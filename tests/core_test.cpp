//===- tests/core_test.cpp - Runtime (dispatcher/cache/traces) tests ---------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Runtime.h"

using namespace rio;
using namespace rio::test;

namespace {

/// Runs \p Prog under the runtime with \p Config (and optional client).
struct RuntimeRun {
  RunResult Result;
  std::string Output;
  StatisticSet Stats;
};

RuntimeRun runUnderRio(const Program &Prog, const RuntimeConfig &Config,
                       Client *TheClient = nullptr,
                       const MachineConfig &MC = MachineConfig()) {
  Machine M(MC);
  EXPECT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, Config, TheClient);
  RuntimeRun R;
  R.Result = RT.run();
  R.Output = M.output();
  R.Stats = RT.stats();
  return R;
}

/// The transparency property: output, exit code and instruction-visible
/// behaviour must be identical to native under every configuration.
void expectTransparent(const std::string &Source) {
  Program Prog = assembleOrDie(Source);
  NativeRun Native = runNative(Prog);
  ASSERT_EQ(Native.Status, RunStatus::Exited)
      << "native run failed: " << Native.FaultReason;
  const RuntimeConfig Configs[] = {
      RuntimeConfig::emulate(),      RuntimeConfig::bbCacheOnly(),
      RuntimeConfig::linkDirect(),   RuntimeConfig::linkIndirect(),
      RuntimeConfig::full(),
  };
  const char *Names[] = {"emulate", "bbcache", "linkdirect", "linkindirect",
                         "full"};
  for (size_t I = 0; I != std::size(Configs); ++I) {
    RuntimeRun R = runUnderRio(Prog, Configs[I]);
    EXPECT_EQ(R.Result.Status, RunStatus::Exited)
        << Names[I] << " faulted: " << R.Result.FaultReason;
    EXPECT_EQ(R.Result.ExitCode, Native.ExitCode) << Names[I];
    EXPECT_EQ(R.Output, Native.Output) << Names[I];
  }
}

//===----------------------------------------------------------------------===//
// Transparency across configurations
//===----------------------------------------------------------------------===//

TEST(CoreTransparency, StraightLine) {
  expectTransparent(R"(
    main:
      mov eax, 3
      add eax, 4
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
}

TEST(CoreTransparency, LoopsAndBranches) {
  expectTransparent(R"(
    main:
      mov ecx, 100
      mov eax, 0
    loop:
      add eax, ecx
      test ecx, 1
      jz even
      add eax, 7
    even:
      dec ecx
      jnz loop
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
}

TEST(CoreTransparency, CallsAndReturns) {
  expectTransparent(R"(
    main:
      mov esi, 0
      mov ecx, 60
    loop:
      mov eax, ecx
      call square
      add esi, eax
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 1
      int 0x80
    square:
      imul eax, eax
      ret
  )");
}

TEST(CoreTransparency, ReturnAddressesAreApplicationAddresses) {
  // The program inspects its own return address on the stack; under the
  // runtime it must still see the *application* address (transparency).
  expectTransparent(R"(
    retaddr_expected: .word after_call
    main:
      call probe
    after_call:
      mov eax, 1
      int 0x80
    probe:
      mov eax, [esp]              ; our return address
      cmp eax, [retaddr_expected]
      jnz lie
      mov ebx, 0                  ; truthful: exit code 0
      ret
    lie:
      mov ebx, 1
      ret
  )");
}

TEST(CoreTransparency, IndirectBranchesAndRecursion) {
  expectTransparent(R"(
    table: .word op_add op_sub op_mul
    main:
      mov esi, 0        ; acc
      mov edi, 0        ; i
    loop:
      mov eax, edi
      cdq
      mov ecx, 3
      idiv ecx          ; edx = i % 3
      mov eax, edi
      call [table+edx*4]
      inc edi
      cmp edi, 50
      jnz loop
      call fib_enter
      mov ebx, esi
      mov eax, 1
      int 0x80
    op_add:
      add esi, eax
      ret
    op_sub:
      sub esi, eax
      ret
    op_mul:
      lea esi, [esi+eax*2]
      ret
    fib_enter:
      mov eax, 12
      call fib
      add esi, eax
      ret
    fib:
      cmp eax, 2
      jl fib_base
      push eax
      sub eax, 1
      call fib
      pop ecx           ; n
      push eax          ; fib(n-1)
      mov eax, ecx
      sub eax, 2
      call fib
      pop ecx           ; fib(n-1)
      add eax, ecx
      ret
    fib_base:
      ret
  )");
}

TEST(CoreTransparency, SyscallsInsideHotLoops) {
  expectTransparent(R"(
    main:
      mov esi, 5
    loop:
      mov ebx, esi
      mov eax, 2
      int 0x80
      dec esi
      jnz loop
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

TEST(CoreTransparency, FloatingPointKernel) {
  expectTransparent(R"(
    vec: .f64 1.0 2.0 3.0 4.0 5.0 6.0 7.0 8.0
    main:
      mov ecx, 0
      mov eax, 8
      cvtsi2sd xmm1, eax  ; 8.0
      xor eax, eax
      cvtsi2sd xmm0, eax  ; 0.0
    loop:
      movsd xmm2, [vec+ecx*8]
      mulsd xmm2, xmm1
      addsd xmm0, xmm2
      inc ecx
      cmp ecx, 8
      jnz loop
      cvttsd2si ebx, xmm0 ; 8*(1+..+8) = 288
      mov eax, 1
      int 0x80
  )");
}

//===----------------------------------------------------------------------===//
// Runtime mechanics
//===----------------------------------------------------------------------===//

Program hotLoopProgram(int Iters) {
  return assembleOrDie(R"(
    main:
      mov ecx, )" + std::to_string(Iters) + R"(
      mov eax, 0
    loop:
      add eax, ecx
      dec ecx
      jnz loop
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
}

TEST(CoreMechanics, LinkingEliminatesContextSwitches) {
  Program P = hotLoopProgram(10000);
  RuntimeRun NoLink = runUnderRio(P, RuntimeConfig::bbCacheOnly());
  RuntimeRun Linked = runUnderRio(P, RuntimeConfig::linkDirect());
  // Without links, every loop iteration context-switches; with links the
  // loop body links to itself and switches all but vanish.
  EXPECT_GE(NoLink.Stats.get("context_switches"), 10000u);
  EXPECT_LT(Linked.Stats.get("context_switches"), 100u);
  EXPECT_GT(NoLink.Result.Cycles, Linked.Result.Cycles * 3);
}

TEST(CoreMechanics, IblAvoidsContextSwitchesForIndirects) {
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 5000
    loop:
      call callee
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 1
      int 0x80
    callee:
      inc esi
      ret
  )");
  RuntimeConfig NoIbl = RuntimeConfig::linkDirect();
  RuntimeConfig WithIbl = RuntimeConfig::linkIndirect();
  RuntimeRun A = runUnderRio(P, NoIbl);
  RuntimeRun B = runUnderRio(P, WithIbl);
  EXPECT_GT(A.Stats.get("context_switches"), 5000u);
  EXPECT_GT(B.Stats.get("ibl_hits"), 4000u);
  EXPECT_LT(B.Stats.get("context_switches"), 1000u);
  EXPECT_GT(A.Result.Cycles, B.Result.Cycles);
}

TEST(CoreMechanics, TracesAreBuiltForHotCode) {
  Program P = hotLoopProgram(20000);
  RuntimeRun R = runUnderRio(P, RuntimeConfig::full());
  EXPECT_GE(R.Stats.get("traces_built"), 1u);
  EXPECT_EQ(R.Result.ExitCode, int(20000u * 20001u / 2u));
}

TEST(CoreMechanics, TracesImprovePerformanceOnCallHeavyCode) {
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 30000
    loop:
      mov eax, ecx
      call work
      add esi, eax
      dec ecx
      jnz loop
      mov ebx, 0
      mov eax, 1
      int 0x80
    work:
      and eax, 15
      add eax, 3
      ret
  )");
  RuntimeRun NoTraces = runUnderRio(P, RuntimeConfig::linkIndirect());
  RuntimeRun Traces = runUnderRio(P, RuntimeConfig::full());
  EXPECT_EQ(NoTraces.Result.ExitCode, Traces.Result.ExitCode);
  EXPECT_GE(Traces.Stats.get("traces_built"), 1u);
  EXPECT_GE(Traces.Stats.get("indirect_branches_inlined"), 1u);
  EXPECT_LT(Traces.Result.Cycles, NoTraces.Result.Cycles);
}

TEST(CoreMechanics, Table1LadderOrdering) {
  // The cumulative feature ladder of Table 1: each rung must be faster.
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 4000
    loop:
      mov eax, ecx
      call work
      add esi, eax
      mov eax, esi
      and eax, 3
      cmp eax, 2
      jnz skip
      add esi, 5
    skip:
      dec ecx
      jnz loop
      mov ebx, 0
      mov eax, 1
      int 0x80
    work:
      and eax, 31
      add eax, 7
      ret
  )");
  uint64_t Emulate = runUnderRio(P, RuntimeConfig::emulate()).Result.Cycles;
  uint64_t BbCache = runUnderRio(P, RuntimeConfig::bbCacheOnly()).Result.Cycles;
  uint64_t Direct = runUnderRio(P, RuntimeConfig::linkDirect()).Result.Cycles;
  uint64_t Indirect =
      runUnderRio(P, RuntimeConfig::linkIndirect()).Result.Cycles;
  uint64_t Full = runUnderRio(P, RuntimeConfig::full()).Result.Cycles;
  EXPECT_GT(Emulate, BbCache);
  EXPECT_GT(BbCache, Direct);
  EXPECT_GT(Direct, Indirect);
  EXPECT_GT(Indirect, Full);
}

TEST(CoreMechanics, FragmentTableGrowsOncePerBlock) {
  Program P = hotLoopProgram(500);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  // main prologue, loop body, epilogue: 3 blocks (give or take block-cap
  // splits), each built exactly once.
  EXPECT_EQ(RT.stats().get("basic_blocks_built"), RT.numFragments());
  EXPECT_LE(RT.numFragments(), 6u);
}

//===----------------------------------------------------------------------===//
// Client hooks
//===----------------------------------------------------------------------===//

class CountingClient : public Client {
public:
  int Inits = 0, Exits = 0, Bbs = 0, Traces = 0, Deletes = 0;
  void onInit(Runtime &) override { ++Inits; }
  void onExit(Runtime &) override { ++Exits; }
  void onBasicBlock(Runtime &, AppPc, InstrList &) override { ++Bbs; }
  void onTrace(Runtime &, AppPc, InstrList &) override { ++Traces; }
  void onFragmentDeleted(Runtime &, AppPc) override { ++Deletes; }
};

TEST(CoreClient, HooksFire) {
  Program P = hotLoopProgram(20000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  CountingClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(C.Inits, 1);
  EXPECT_EQ(C.Exits, 1);
  EXPECT_GE(C.Bbs, 3);
  EXPECT_GE(C.Traces, 1);
  EXPECT_GE(C.Deletes, 1); // the head bb replaced by its trace
}

/// A client that inserts a clean call counting executions of one block.
class CleanCallClient : public Client {
public:
  uint64_t Executions = 0;
  void onBasicBlock(Runtime &RT, AppPc, InstrList &Block) override {
    uint32_t Id = RT.registerCleanCall(
        [this](CleanCallContext &) { ++Executions; });
    Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                     {Operand::imm(int64_t(Id), 4)});
    ASSERT_NE(Call, nullptr);
    Block.prepend(Call);
  }
};

TEST(CoreClient, CleanCallsExecute) {
  Program P = hotLoopProgram(1000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  CleanCallClient C;
  RuntimeConfig Config = RuntimeConfig::linkDirect(); // no traces: bbs only
  Runtime RT(M, Config, &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  // Loop body executes 1000 times plus prologue/epilogue once each.
  EXPECT_GE(C.Executions, 1000u);
  EXPECT_LE(C.Executions, 1010u);
}

//===----------------------------------------------------------------------===//
// Adaptive replacement (paper Section 3.4)
//===----------------------------------------------------------------------===//

TEST(CoreAdaptive, DecodeAndReplaceFragmentRoundTrip) {
  Program P = hotLoopProgram(2000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());

  // Prime the cache by running; then decode a fragment, re-install it
  // unchanged, and run again: behaviour must be preserved.
  RunResult First = RT.run();
  ASSERT_EQ(First.Status, RunStatus::Exited);

  // Find some fragment tag.
  AppPc Tag = P.symbol("loop");
  ASSERT_NE(RT.lookupFragment(Tag), nullptr);
  Arena A;
  InstrList *IL = RT.decodeFragment(A, Tag);
  ASSERT_NE(IL, nullptr);
  EXPECT_GT(IL->size(), 0u);
  EXPECT_TRUE(RT.replaceFragment(Tag, *IL));
  EXPECT_EQ(RT.stats().get("fragments_replaced"), 1u);
}

/// A client that, on the loop block's first execution, rewrites the block
/// (via decode/replace) to count subsequent executions in a scratch slot —
/// the paper's "a trace can generate a new version of itself" scenario in
/// miniature.
class SelfRewritingClient : public Client {
public:
  AppPc LoopTag = 0;
  bool Rewritten = false;
  Arena RewriteArena;

  void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &Block) override {
    if (Tag != LoopTag || Rewritten)
      return;
    uint32_t Id = RT.registerCleanCall([this, Tag](CleanCallContext &Ctx) {
      if (Rewritten)
        return;
      Rewritten = true;
      InstrList *IL = Ctx.RT.decodeFragment(RewriteArena, Tag);
      ASSERT_NE(IL, nullptr);
      uint32_t Slot = Ctx.RT.slots().ScratchSlots;
      Instr *Inc = Instr::createSynth(RewriteArena, OP_inc,
                                      {Operand::memAbs(Slot, 4)});
      ASSERT_NE(Inc, nullptr);
      IL->prepend(Inc);
      ASSERT_TRUE(Ctx.RT.replaceFragment(Tag, *IL));
    });
    Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                     {Operand::imm(int64_t(Id), 4)});
    Block.prepend(Call);
  }
};

TEST(CoreAdaptive, ReplaceChangesExecutedCode) {
  Program P = hotLoopProgram(777);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  SelfRewritingClient C;
  C.LoopTag = P.symbol("loop");
  ASSERT_NE(C.LoopTag, 0u);
  Runtime RT(M, RuntimeConfig::linkDirect(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, int(777u * 778u / 2u)); // behaviour preserved
  // The replacement carries the inc: it counts the remaining executions.
  // (The inc counts all executions after the rewrite, i.e. 777 minus the
  // executions of the old fragment; the clean call fires on the first.)
  uint32_t Count = 0;
  M.mem().read32(RT.slots().ScratchSlots, Count);
  EXPECT_GT(Count, 700u);
  EXPECT_LE(Count, 777u);
  EXPECT_EQ(RT.stats().get("fragments_replaced"), 1u);
}

//===----------------------------------------------------------------------===//
// Custom traces (paper Section 3.5)
//===----------------------------------------------------------------------===//

class MarkEverythingHotClient : public Client {
public:
  void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &) override {
    RT.markTraceHead(Tag);
  }
};

TEST(CoreCustomTraces, ClientMarkedHeadsProduceTraces) {
  Program P = hotLoopProgram(20000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  MarkEverythingHotClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_GE(RT.stats().get("traces_built"), 1u);
}

class EndAfterOneBlockClient : public Client {
public:
  EndTrace onEndTrace(Runtime &, AppPc, AppPc) override {
    return EndTrace::End;
  }
};

TEST(CoreCustomTraces, EndTraceHookRespected) {
  Program P = hotLoopProgram(20000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  EndAfterOneBlockClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  // Every trace ends after its head block.
  uint64_t Traces = RT.stats().get("traces_built");
  uint64_t Blocks = RT.stats().get("trace_blocks_total");
  ASSERT_GE(Traces, 1u);
  EXPECT_EQ(Blocks, Traces);
}

} // namespace

namespace {

TEST(CoreCacheMgmt, BoundedCacheFlushesAndStaysCorrect) {
  // A machine with a tiny runtime region forces cache capacity management;
  // execution must stay correct across it (fragments rebuild on demand).
  // The program is a long chain of distinct blocks, walked twice, plus a
  // hot loop — enough code volume to overflow a ~14KB block cache.
  std::string Src = R"(
    main:
      mov esi, 0
      mov edi, 2
    chain:
      jmp b0
  )";
  for (int I = 0; I != 400; ++I) {
    Src += "b" + std::to_string(I) + ":\n";
    Src += "  add esi, " + std::to_string((I * 2654435761u >> 8) & 0xFFFF) +
           "\n";
    Src += "  and esi, 0xFFFFFF\n";
    Src += "  jmp b" + std::to_string(I + 1) + "\n";
  }
  Src += R"(b400:
      dec edi
      jnz chain
      mov ecx, 500
    loop:
      add esi, ecx
      and esi, 0xFFFFFF
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )";
  Program P = assembleOrDie(Src);
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  MachineConfig MC;
  MC.RuntimeRegionSize = 36 * 1024; // slots + two tiny caches
  Machine M(MC);
  ASSERT_TRUE(loadProgram(M, P));
  CountingClient C;
  RuntimeConfig Cfg = RuntimeConfig::full();
  Cfg.BbCacheSize = 10 * 1024; // the chain needs ~13KB of block fragments
  Runtime RT(M, Cfg, &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  // The default policy evicts incrementally instead of flushing wholesale.
  EXPECT_GE(RT.stats().get("cache_evictions"), 1u);
  // The client was told about every deleted fragment.
  EXPECT_GE(uint64_t(C.Deletes), RT.stats().get("cache_evictions"));

  // The FlushAll policy must also survive the same pressure, by emptying
  // the pressured cache wholesale.
  Machine M2(MC);
  ASSERT_TRUE(loadProgram(M2, P));
  RuntimeConfig FlushCfg = Cfg;
  FlushCfg.Eviction = EvictionPolicy::FlushAll;
  Runtime RT2(M2, FlushCfg);
  RunResult R2 = RT2.run();
  ASSERT_EQ(R2.Status, RunStatus::Exited) << R2.FaultReason;
  EXPECT_EQ(M2.output(), Native.Output);
  EXPECT_GE(RT2.stats().get("cache_flushes_bb"), 1u);
}

TEST(CoreCacheMgmt, ExplicitFlushRebuildsOnDemand) {
  Program P = hotLoopProgram(2000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  // Run a slice, flush everything, then finish: behaviour preserved.
  RunResult Part = RT.runFor(3000);
  ASSERT_TRUE(Part.QuantumExpired);
  RT.flushCaches();
  EXPECT_EQ(RT.lookupFragment(P.symbol("loop")), nullptr);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, int(2000u * 2001u / 2u));
  EXPECT_GE(RT.stats().get("cache_flushes"), 1u);
}

} // namespace

namespace {

TEST(CoreLinking, PatchBytesAreExactRel32) {
  // Verify linking at the byte level: the exit CTI's last four bytes hold
  // the rel32 to the stub when unlinked and to the target fragment when
  // linked.
  Program P = hotLoopProgram(200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  ASSERT_EQ(RT.run().Status, RunStatus::Exited);

  Fragment *Loop = RT.lookupFragment(P.symbol("loop"));
  ASSERT_NE(Loop, nullptr);
  // Find the linked self-exit.
  const FragmentExit *Linked = nullptr;
  for (const FragmentExit &E : Loop->Exits)
    if (E.Linked && E.LinkedTo == Loop)
      Linked = &E;
  ASSERT_NE(Linked, nullptr) << "loop fragment should self-link";

  uint32_t Rel = 0;
  ASSERT_TRUE(
      M.mem().read32(Linked->ctiAddr(*Loop) + Linked->CtiLen - 4, Rel));
  EXPECT_EQ(Linked->ctiAddr(*Loop) + Linked->CtiLen + Rel, Loop->CacheAddr)
      << "linked rel32 must land on the target fragment entry";

  // Incoming-links bookkeeping matches.
  bool Found = false;
  for (uint32_t Id : Loop->IncomingLinks)
    Found = Found || Id == Linked->ExitId;
  EXPECT_TRUE(Found);
}

TEST(CoreAdaptive, DecodeFragmentBindsInternalLabels) {
  // A trace with an inlined indirect branch contains internal branches
  // (jecxz to its hit label). decodeFragment must surface them as label
  // operands, and the list must re-install cleanly.
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 20000
    loop:
      call callee
      add esi, eax
      and esi, 0xFFFFFF
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 1
      int 0x80
    callee:
      mov eax, 3
      ret
  )");
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  ASSERT_EQ(RT.run().Status, RunStatus::Exited);

  // The loop trace inlines the callee's ret: find it.
  Fragment *Trace = RT.lookupFragment(P.symbol("loop"));
  ASSERT_NE(Trace, nullptr);
  ASSERT_TRUE(Trace->isTrace());

  Arena A;
  InstrList *IL = RT.decodeFragment(A, Trace->Tag);
  ASSERT_NE(IL, nullptr);
  unsigned Labels = 0, LabelTargets = 0, Exits = 0;
  for (Instr &I : *IL) {
    if (I.isLabel()) {
      ++Labels;
      continue;
    }
    if (I.isCti() && !I.isIndirectCti()) {
      if (I.getSrc(0).isInstr())
        ++LabelTargets;
      else
        ++Exits;
    }
  }
  EXPECT_GE(Labels, 1u) << "inlined check's hit label must decode";
  EXPECT_GE(LabelTargets, 1u) << "jecxz must bind to its label";
  EXPECT_GE(Exits, 1u);

  // Reinstall unchanged: behaviour must be preserved on a fresh run of the
  // same program in a new machine (the replaced fragment is structural).
  EXPECT_TRUE(RT.replaceFragment(Trace->Tag, *IL));
}

TEST(CoreThreads, RunForHonorsQuanta) {
  Program P = hotLoopProgram(100000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  uint64_t Before = M.instructionsExecuted();
  RunResult R = RT.runFor(1000);
  EXPECT_TRUE(R.QuantumExpired);
  uint64_t Ran = M.instructionsExecuted() - Before;
  EXPECT_GE(Ran, 900u);
  EXPECT_LE(Ran, 1400u); // may overshoot by a basic block or so
  // Resume to completion.
  R = RT.run();
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(R.ExitCode, int((100000ull * 100001ull / 2) & 0x7FFFFFFF) -
                            int(((100000ull * 100001ull / 2) & 0x80000000)));
}

} // namespace

namespace {

TEST(CoreFaults, CacheFaultsReportApplicationContext) {
  // A memory fault inside hot (cached) code must be reported in terms of
  // the application code it came from, not a bare cache address.
  Program P = assembleOrDie(R"(
    main:
      mov ecx, 300
    warm:
      add eax, ecx
      dec ecx
      jnz warm
      mov ebx, [0xFFFFFF0]   ; out-of-range load
      hlt
  )");
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Faulted);
  EXPECT_NE(R.FaultReason.find("application address"), std::string::npos)
      << R.FaultReason;
}

} // namespace
