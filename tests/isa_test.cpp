//===- tests/isa_test.cpp - ISA decode/encode tests -------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "isa/Decode.h"
#include "isa/Eflags.h"
#include "isa/Encode.h"
#include "isa/OperandLayout.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace rio;

namespace {

/// Encodes the given explicit-operand form and decodes it back, expecting a
/// structurally identical instruction.
void roundTrip(Opcode Op, std::initializer_list<Operand> Explicit,
               AppPc Pc = 0x1000) {
  Operand Ex[MaxExplicit];
  unsigned NumEx = 0;
  for (const Operand &O : Explicit)
    Ex[NumEx++] = O;

  Operand Srcs[MaxSrcs], Dsts[MaxDsts];
  unsigned NumSrcs = 0, NumDsts = 0;
  ASSERT_TRUE(
      buildCanonicalOperands(Op, Ex, NumEx, Srcs, NumSrcs, Dsts, NumDsts))
      << opcodeName(Op) << " with " << NumEx << " operands";

  uint8_t Buf[MaxInstrLength];
  int Len = encodeInstr(Op, 0, Srcs, NumSrcs, Dsts, NumDsts, Pc, Buf);
  ASSERT_GT(Len, 0) << "encode failed for " << opcodeName(Op);

  DecodedInstr DI;
  ASSERT_TRUE(decodeInstr(Buf, size_t(Len), Pc, DI))
      << "decode failed for " << opcodeName(Op);
  EXPECT_EQ(DI.Op, Op);
  EXPECT_EQ(DI.Length, Len);
  ASSERT_EQ(DI.NumSrcs, NumSrcs);
  ASSERT_EQ(DI.NumDsts, NumDsts);
  for (unsigned I = 0; I != NumSrcs; ++I)
    EXPECT_TRUE(DI.Srcs[I] == Srcs[I])
        << opcodeName(Op) << " src " << I << " mismatch";
  for (unsigned I = 0; I != NumDsts; ++I)
    EXPECT_TRUE(DI.Dsts[I] == Dsts[I])
        << opcodeName(Op) << " dst " << I << " mismatch";
}

Operand R(Register Reg) { return Operand::reg(Reg); }
Operand I8(int64_t V) { return Operand::imm(V, 4); }
Operand M(Register Base, int32_t Disp, uint8_t Size = 4,
          Register Index = REG_NULL, uint8_t Scale = 1) {
  return Operand::mem(Base, Disp, Size, Index, Scale);
}

TEST(IsaEncode, MovForms) {
  roundTrip(OP_mov, {R(REG_EAX), R(REG_EBX)});
  roundTrip(OP_mov, {R(REG_EDI), I8(0x12345678)});
  roundTrip(OP_mov, {R(REG_ECX), M(REG_ESI, 0xC)});
  roundTrip(OP_mov, {M(REG_EBP, -8), R(REG_EDX)});
  roundTrip(OP_mov, {M(REG_ESP, 0), R(REG_EAX)});
  roundTrip(OP_mov, {M(REG_NULL, 0x2000), R(REG_EAX)});
  roundTrip(OP_mov, {M(REG_EAX, 0, 4, REG_ECX, 4), R(REG_EDX)});
  roundTrip(OP_mov, {M(REG_NULL, 0x3000, 4, REG_EDI, 8), R(REG_EDX)});
  roundTrip(OP_mov, {M(REG_EBX, 0x12345, 4, REG_EAX, 2), R(REG_ESI)});
  roundTrip(OP_mov, {M(REG_EBX, 0x40), I8(-1)});
}

TEST(IsaEncode, ByteAndExtendedMoves) {
  roundTrip(OP_mov_b, {R(REG_AL), R(REG_BH)});
  roundTrip(OP_mov_b, {R(REG_CL), M(REG_ESI, 5, 1)});
  roundTrip(OP_mov_b, {M(REG_EDI, -3, 1), R(REG_DL)});
  roundTrip(OP_mov_b, {R(REG_AH), Operand::imm(0x7F, 1)});
  roundTrip(OP_mov_b, {M(REG_EAX, 0, 1), Operand::imm(-2, 1)});
  roundTrip(OP_movzx_b, {R(REG_EAX), R(REG_CL)});
  roundTrip(OP_movzx_b, {R(REG_EBX), M(REG_EDX, 7, 1)});
  roundTrip(OP_movzx_w, {R(REG_ECX), M(REG_EBP, 2, 2)});
  roundTrip(OP_movsx_b, {R(REG_ESI), R(REG_BL)});
  roundTrip(OP_movsx_w, {R(REG_EDI), M(REG_ESP, 4, 2)});
}

TEST(IsaEncode, AluForms) {
  for (Opcode Op : {OP_add, OP_or, OP_adc, OP_sbb, OP_and, OP_sub, OP_xor,
                    OP_cmp}) {
    roundTrip(Op, {R(REG_EAX), R(REG_ECX)});
    roundTrip(Op, {R(REG_EBX), M(REG_ESI, 0x1C)});
    roundTrip(Op, {M(REG_EDI, -0x20), R(REG_EDX)});
    roundTrip(Op, {R(REG_EDX), I8(5)});        // imm8 form
    roundTrip(Op, {R(REG_EAX), I8(0x1234)});   // eax,imm32 short form
    roundTrip(Op, {R(REG_EBP), I8(0x12345)});  // generic imm32 form
    roundTrip(Op, {M(REG_EAX, 4), I8(1000)});
  }
}

TEST(IsaEncode, TestIncDecNegNot) {
  roundTrip(OP_test, {R(REG_EAX), R(REG_EBX)});
  roundTrip(OP_test, {R(REG_EAX), I8(0xFF)});
  roundTrip(OP_test, {R(REG_ESI), I8(0x10)});
  roundTrip(OP_test, {M(REG_ESP, 8), R(REG_ECX)});
  for (Opcode Op : {OP_inc, OP_dec}) {
    roundTrip(Op, {R(REG_EAX)});
    roundTrip(Op, {R(REG_EDI)});
    roundTrip(Op, {M(REG_EBX, 0x10)});
  }
  roundTrip(OP_neg, {R(REG_ECX)});
  roundTrip(OP_neg, {M(REG_EBP, -4)});
  roundTrip(OP_not, {R(REG_EDX)});
}

TEST(IsaEncode, MulDivShift) {
  roundTrip(OP_imul, {R(REG_EAX), R(REG_EBX)});
  roundTrip(OP_imul, {R(REG_ECX), M(REG_ESI, 0)});
  roundTrip(OP_imul, {R(REG_EDX), R(REG_EDX), I8(10)});
  roundTrip(OP_imul, {R(REG_EDI), M(REG_EBP, 8), I8(100000)});
  roundTrip(OP_mul, {R(REG_ECX)});
  roundTrip(OP_idiv, {R(REG_EBX)});
  roundTrip(OP_idiv, {M(REG_ESI, 4)});
  roundTrip(OP_cdq, {});
  for (Opcode Op : {OP_shl, OP_shr, OP_sar}) {
    roundTrip(Op, {R(REG_EAX), Operand::imm(1, 1)});
    roundTrip(Op, {R(REG_ECX), Operand::imm(7, 1)});
    roundTrip(Op, {M(REG_EDI, 2), Operand::imm(3, 1)});
    roundTrip(Op, {R(REG_EDX), R(REG_CL)});
  }
}

TEST(IsaEncode, StackOps) {
  roundTrip(OP_push, {R(REG_EBP)});
  roundTrip(OP_push, {I8(42)});
  roundTrip(OP_push, {I8(0x12345678)});
  roundTrip(OP_push, {M(REG_EAX, 0)});
  roundTrip(OP_pop, {R(REG_ESI)});
  roundTrip(OP_pop, {M(REG_EBX, 4)});
  roundTrip(OP_xchg, {R(REG_EAX), R(REG_EDX)});
  roundTrip(OP_xchg, {M(REG_ESP, 0), R(REG_ECX)});
  roundTrip(OP_lea, {R(REG_EAX), M(REG_EBX, 8, 4, REG_ECX, 2)});
}

TEST(IsaEncode, ControlFlow) {
  roundTrip(OP_jmp, {Operand::pc(0x1100)});
  roundTrip(OP_jmp, {Operand::pc(0x9000)});
  roundTrip(OP_call, {Operand::pc(0x2000)});
  roundTrip(OP_jmp_ind, {R(REG_EAX)});
  roundTrip(OP_jmp_ind, {M(REG_EBX, 0, 4, REG_ECX, 4)});
  roundTrip(OP_call_ind, {R(REG_EDX)});
  roundTrip(OP_call_ind, {M(REG_NULL, 0x5000)});
  roundTrip(OP_ret, {});
  roundTrip(OP_ret_imm, {Operand::imm(8, 2)});
  for (unsigned Cc = 0; Cc != 16; ++Cc)
    roundTrip(condBranchForCode(Cc), {Operand::pc(0x1003)});
  for (unsigned Cc = 0; Cc != 16; ++Cc)
    roundTrip(condBranchForCode(Cc), {Operand::pc(0x8000)});
}

TEST(IsaEncode, SystemAndFp) {
  roundTrip(OP_int, {Operand::imm(0x80, 1)});
  roundTrip(OP_hlt, {});
  roundTrip(OP_nop, {});
  roundTrip(OP_clientcall, {I8(77)});
  roundTrip(OP_savef, {M(REG_NULL, 0x7000)});
  roundTrip(OP_restf, {M(REG_NULL, 0x7000)});

  roundTrip(OP_movsd, {R(REG_XMM0), R(REG_XMM3)});
  roundTrip(OP_movsd, {R(REG_XMM1), M(REG_ESI, 0, 8)});
  roundTrip(OP_movsd, {M(REG_EDI, 8, 8), R(REG_XMM2)});
  for (Opcode Op : {OP_addsd, OP_subsd, OP_mulsd, OP_divsd}) {
    roundTrip(Op, {R(REG_XMM0), R(REG_XMM1)});
    roundTrip(Op, {R(REG_XMM4), M(REG_EAX, 0, 8, REG_EBX, 8)});
  }
  roundTrip(OP_ucomisd, {R(REG_XMM0), R(REG_XMM5)});
  roundTrip(OP_ucomisd, {R(REG_XMM2), M(REG_ECX, 0x10, 8)});
  roundTrip(OP_cvtsi2sd, {R(REG_XMM3), R(REG_EAX)});
  roundTrip(OP_cvtsi2sd, {R(REG_XMM3), M(REG_EBP, -12)});
  roundTrip(OP_cvttsd2si, {R(REG_EDX), R(REG_XMM7)});
  roundTrip(OP_cvttsd2si, {R(REG_ESI), M(REG_ESP, 16, 8)});
}

TEST(IsaEncode, PrefixesSurviveRoundTrip) {
  Operand Srcs[MaxSrcs], Dsts[MaxDsts];
  unsigned NumSrcs = 0, NumDsts = 0;
  Operand Ex[2] = {R(REG_EAX), R(REG_EBX)};
  ASSERT_TRUE(
      buildCanonicalOperands(OP_add, Ex, 2, Srcs, NumSrcs, Dsts, NumDsts));
  uint8_t Buf[MaxInstrLength];
  int Len = encodeInstr(OP_add, PREFIX_LOCK | PREFIX_HINT, Srcs, NumSrcs, Dsts,
                        NumDsts, 0x1000, Buf);
  ASSERT_GT(Len, 0);
  DecodedInstr DI;
  ASSERT_TRUE(decodeInstr(Buf, size_t(Len), 0x1000, DI));
  EXPECT_EQ(DI.Prefixes, PREFIX_LOCK | PREFIX_HINT);
  EXPECT_EQ(DI.Op, OP_add);
}

TEST(IsaEncode, ShortFormsAreShortest) {
  // inc eax must use the one-byte 0x40 form.
  Operand Ex[1] = {R(REG_EAX)};
  Operand Srcs[MaxSrcs], Dsts[MaxDsts];
  unsigned NumSrcs = 0, NumDsts = 0;
  ASSERT_TRUE(
      buildCanonicalOperands(OP_inc, Ex, 1, Srcs, NumSrcs, Dsts, NumDsts));
  uint8_t Buf[MaxInstrLength];
  EXPECT_EQ(encodeInstr(OP_inc, 0, Srcs, NumSrcs, Dsts, NumDsts, 0, Buf), 1);
  EXPECT_EQ(Buf[0], 0x40);

  // add ebx, 5 must use the 3-byte 0x83 imm8 form.
  Operand Ex2[2] = {R(REG_EBX), I8(5)};
  ASSERT_TRUE(
      buildCanonicalOperands(OP_add, Ex2, 2, Srcs, NumSrcs, Dsts, NumDsts));
  EXPECT_EQ(encodeInstr(OP_add, 0, Srcs, NumSrcs, Dsts, NumDsts, 0, Buf), 3);
  EXPECT_EQ(Buf[0], 0x83);

  // Short jmp to a nearby target is two bytes when permitted...
  Operand Ex3[1] = {Operand::pc(0x1010)};
  ASSERT_TRUE(
      buildCanonicalOperands(OP_jmp, Ex3, 1, Srcs, NumSrcs, Dsts, NumDsts));
  EXPECT_EQ(encodeInstr(OP_jmp, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000, Buf),
            2);
  // ...and five bytes when short branches are disabled (cache policy).
  EncodeOptions NoShort;
  NoShort.AllowShortBranches = false;
  EXPECT_EQ(encodeInstr(OP_jmp, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000, Buf,
                        NoShort),
            5);
}

TEST(IsaDecode, LevelsAgreeOnLength) {
  // Build a few instructions and confirm all three decoders agree.
  const std::initializer_list<Operand> Forms[] = {
      {R(REG_EAX), R(REG_EBX)},
      {R(REG_ECX), M(REG_ESI, 0xC)},
      {M(REG_EBP, -8), R(REG_EDX)},
      {R(REG_EDI), I8(0x12345678)},
  };
  for (const auto &Form : Forms) {
    Operand Ex[MaxExplicit];
    unsigned NumEx = 0;
    for (const Operand &O : Form)
      Ex[NumEx++] = O;
    Operand Srcs[MaxSrcs], Dsts[MaxDsts];
    unsigned NumSrcs = 0, NumDsts = 0;
    ASSERT_TRUE(
        buildCanonicalOperands(OP_mov, Ex, NumEx, Srcs, NumSrcs, Dsts, NumDsts));
    uint8_t Buf[MaxInstrLength];
    int Len = encodeInstr(OP_mov, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000, Buf);
    ASSERT_GT(Len, 0);
    EXPECT_EQ(decodeLength(Buf, size_t(Len)), Len);
    Opcode Op;
    uint32_t Eflags;
    int L2Len;
    ASSERT_TRUE(decodeOpcodeAndEflags(Buf, size_t(Len), Op, Eflags, L2Len));
    EXPECT_EQ(Op, OP_mov);
    EXPECT_EQ(L2Len, Len);
    EXPECT_EQ(Eflags, 0u);
  }
}

TEST(IsaDecode, TruncatedInstructionsFail) {
  // mov eax, imm32 truncated after 3 bytes.
  uint8_t Buf[] = {0xB8, 0x01, 0x02};
  DecodedInstr DI;
  EXPECT_FALSE(decodeInstr(Buf, sizeof(Buf), 0, DI));
  EXPECT_EQ(decodeLength(Buf, sizeof(Buf)), -1);
}

TEST(IsaDecode, InvalidOpcodeFails) {
  uint8_t Buf[] = {0x0F, 0xFF, 0x00, 0x00};
  DecodedInstr DI;
  EXPECT_FALSE(decodeInstr(Buf, sizeof(Buf), 0, DI));
}

TEST(IsaEflags, IncDoesNotTouchCarry) {
  EXPECT_EQ(opcodeInfo(OP_inc).EflagsEffect & EFLAGS_WRITE_CF, 0u);
  EXPECT_NE(opcodeInfo(OP_inc).EflagsEffect & EFLAGS_WRITE_ZF, 0u);
  EXPECT_NE(opcodeInfo(OP_add).EflagsEffect & EFLAGS_WRITE_CF, 0u);
  EXPECT_EQ(opcodeInfo(OP_adc).EflagsEffect & EFLAGS_READ_CF, EFLAGS_READ_CF);
  EXPECT_EQ(opcodeInfo(OP_jb).EflagsEffect, EFLAGS_READ_CF);
  EXPECT_EQ(opcodeInfo(OP_mov).EflagsEffect, 0u);
}

TEST(IsaEflags, InlineChainIngredients) {
  // The adaptive IB inline chains (core/IbInline.cpp) are built from
  // mov/lea/jecxz and bracketed by savef/restf only when flags are live.
  // Pin the effect masks those decisions rest on.
  EXPECT_EQ(opcodeInfo(OP_inc).EflagsEffect, uint32_t(EFLAGS_WRITE_NO_CF));
  EXPECT_EQ(opcodeInfo(OP_dec).EflagsEffect, uint32_t(EFLAGS_WRITE_NO_CF));
  EXPECT_EQ(uint32_t(EFLAGS_WRITE_NO_CF),
            uint32_t(EFLAGS_WRITE_ALL) & ~uint32_t(EFLAGS_WRITE_CF));

  // The chain building blocks must be flag-neutral: jecxz tests ecx, not
  // ZF, which is the whole reason the chain compares via lea + jecxz.
  EXPECT_EQ(opcodeInfo(OP_mov).EflagsEffect, 0u);
  EXPECT_EQ(opcodeInfo(OP_lea).EflagsEffect, 0u);
  EXPECT_EQ(opcodeInfo(OP_jecxz).EflagsEffect, 0u);

  // savef reads every arithmetic flag, restf writes every one; the dead
  // flag elision pass matches the pair through these masks.
  EXPECT_EQ(opcodeInfo(OP_savef).EflagsEffect, uint32_t(EFLAGS_READ_ALL));
  EXPECT_EQ(opcodeInfo(OP_restf).EflagsEffect, uint32_t(EFLAGS_WRITE_ALL));
  EXPECT_EQ(eflagsWriteToRead(opcodeInfo(OP_restf).EflagsEffect),
            uint32_t(EFLAGS_READ_ALL));
  EXPECT_EQ(eflagsReadToWrite(opcodeInfo(OP_savef).EflagsEffect),
            uint32_t(EFLAGS_WRITE_ALL));
}

TEST(IsaEflags, ShiftRefinement) {
  // shl eax, 3 (immediate nonzero count): pure write after full decode.
  Operand Ex[2] = {R(REG_EAX), Operand::imm(3, 1)};
  Operand Srcs[MaxSrcs], Dsts[MaxDsts];
  unsigned NumSrcs = 0, NumDsts = 0;
  ASSERT_TRUE(
      buildCanonicalOperands(OP_shl, Ex, 2, Srcs, NumSrcs, Dsts, NumDsts));
  uint8_t Buf[MaxInstrLength];
  int Len = encodeInstr(OP_shl, 0, Srcs, NumSrcs, Dsts, NumDsts, 0, Buf);
  ASSERT_GT(Len, 0);
  DecodedInstr DI;
  ASSERT_TRUE(decodeInstr(Buf, size_t(Len), 0, DI));
  EXPECT_EQ(DI.Eflags, uint32_t(EFLAGS_WRITE_ARITH));

  // shl eax, cl: conservative read+write.
  Ex[1] = R(REG_CL);
  ASSERT_TRUE(
      buildCanonicalOperands(OP_shl, Ex, 2, Srcs, NumSrcs, Dsts, NumDsts));
  Len = encodeInstr(OP_shl, 0, Srcs, NumSrcs, Dsts, NumDsts, 0, Buf);
  ASSERT_GT(Len, 0);
  ASSERT_TRUE(decodeInstr(Buf, size_t(Len), 0, DI));
  EXPECT_EQ(DI.Eflags, uint32_t(EFLAGS_READ_ALL | EFLAGS_WRITE_ALL));
}

TEST(IsaOpcodes, ClassificationFlags) {
  EXPECT_TRUE(opcodeIsCti(OP_jmp));
  EXPECT_TRUE(opcodeIsCti(OP_ret));
  EXPECT_TRUE(opcodeIsCti(OP_call_ind));
  EXPECT_FALSE(opcodeIsCti(OP_add));
  EXPECT_TRUE(opcodeIsCondBranch(OP_jz));
  EXPECT_FALSE(opcodeIsCondBranch(OP_jmp));
  EXPECT_TRUE(opcodeIsIndirectCti(OP_ret));
  EXPECT_TRUE(opcodeIsIndirectCti(OP_jmp_ind));
  EXPECT_FALSE(opcodeIsIndirectCti(OP_jmp));
  EXPECT_TRUE(opcodeIsCall(OP_call));
  EXPECT_TRUE(opcodeIsCall(OP_call_ind));
  EXPECT_TRUE(opcodeIsReturn(OP_ret_imm));
  EXPECT_EQ(invertCondBranch(OP_jz), OP_jnz);
  EXPECT_EQ(invertCondBranch(OP_jnle), OP_jle);
}

/// Property: random-but-valid instruction forms round-trip through
/// encode/decode for every ALU opcode and many operand shapes.
class RandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTrip, EncodeDecodeIdentity) {
  Rng Rand(GetParam());
  static const Register Gprs[] = {REG_EAX, REG_ECX, REG_EDX, REG_EBX,
                                  REG_ESP, REG_EBP, REG_ESI, REG_EDI};
  static const Opcode Alu[] = {OP_add, OP_or,  OP_adc, OP_sbb,
                               OP_and, OP_sub, OP_xor, OP_cmp};
  for (int Iter = 0; Iter != 200; ++Iter) {
    Opcode Op = Alu[Rand.nextBelow(8)];
    Register Dst = Gprs[Rand.nextBelow(8)];
    Operand Second;
    switch (Rand.nextBelow(3)) {
    case 0:
      Second = Operand::reg(Gprs[Rand.nextBelow(8)]);
      break;
    case 1:
      Second = Operand::imm(Rand.nextInRange(-100000, 100000), 4);
      break;
    default: {
      Register Base = Gprs[Rand.nextBelow(8)];
      Register Index = Gprs[Rand.nextBelow(8)];
      if (Index == REG_ESP)
        Index = REG_NULL;
      uint8_t Scale = uint8_t(1u << Rand.nextBelow(4));
      Second = Operand::mem(Base, int32_t(Rand.nextInRange(-4096, 4096)), 4,
                            Index, Index == REG_NULL ? 1 : Scale);
      break;
    }
    }
    roundTrip(Op, {Operand::reg(Dst), Second});
    if (Second.isMem())
      roundTrip(Op, {Second, Operand::reg(Dst)});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

} // namespace

namespace {

/// Exhaustive ModRM/SIB addressing-mode sweep: every base x index x scale
/// x displacement-class combination must round-trip through encode/decode
/// bit-exactly (as a mov load and a mov store).
TEST(IsaAddressing, ExhaustiveModrmSibSweep) {
  static const Register Bases[] = {REG_NULL, REG_EAX, REG_ECX, REG_EDX,
                                   REG_EBX,  REG_ESP, REG_EBP, REG_ESI,
                                   REG_EDI};
  static const Register Indexes[] = {REG_NULL, REG_EAX, REG_ECX, REG_EDX,
                                     REG_EBX,  REG_EBP, REG_ESI, REG_EDI};
  static const uint8_t Scales[] = {1, 2, 4, 8};
  static const int32_t Disps[] = {0,    1,    -1,        127,       -128,
                                  128,  -129, 0x12345678, -0x1000,  4096};
  unsigned Combos = 0;
  for (Register Base : Bases) {
    for (Register Index : Indexes) {
      for (uint8_t Scale : Scales) {
        if (Index == REG_NULL && Scale != 1)
          continue; // scale without an index is not a distinct mode
        for (int32_t Disp : Disps) {
          Operand Mem = Operand::mem(Base, Disp, 4, Index, Scale);
          roundTrip(OP_mov, {Operand::reg(REG_EDI), Mem});
          roundTrip(OP_mov, {Mem, Operand::reg(REG_ESI)});
          ++Combos;
        }
      }
    }
  }
  EXPECT_GT(Combos, 2000u);
}

/// Every byte register works in both directions of the byte move and as a
/// movzx/movsx source.
TEST(IsaAddressing, AllByteRegisters) {
  static const Register Bytes[] = {REG_AL, REG_CL, REG_DL, REG_BL,
                                   REG_AH, REG_CH, REG_DH, REG_BH};
  for (Register B : Bytes) {
    roundTrip(OP_mov_b, {Operand::reg(B), Operand::imm(0x5A, 1)});
    roundTrip(OP_mov_b, {Operand::mem(REG_ESI, 3, 1), Operand::reg(B)});
    roundTrip(OP_movzx_b, {Operand::reg(REG_EDX), Operand::reg(B)});
    roundTrip(OP_movsx_b, {Operand::reg(REG_EBP), Operand::reg(B)});
  }
}

/// Every xmm register in every scalar-double instruction position.
TEST(IsaAddressing, AllXmmRegisters) {
  for (unsigned I = 0; I != 8; ++I) {
    Register X = Register(REG_XMM0 + I);
    Register Y = Register(REG_XMM0 + ((I + 3) & 7));
    roundTrip(OP_movsd, {Operand::reg(X), Operand::reg(Y)});
    roundTrip(OP_movsd, {Operand::reg(X), Operand::mem(REG_EAX, 8, 8)});
    roundTrip(OP_addsd, {Operand::reg(X), Operand::reg(Y)});
    roundTrip(OP_divsd, {Operand::reg(X), Operand::mem(REG_EDI, -16, 8)});
    roundTrip(OP_cvttsd2si, {Operand::reg(REG_ECX), Operand::reg(X)});
  }
}

/// decodeLength agrees with full decode on every encodable form swept
/// above — the Level 0/1 boundary scanner can never disagree with the
/// full decoder about instruction extents.
TEST(IsaAddressing, BoundaryScanAgreesWithFullDecode) {
  Rng Rand(777);
  static const Register Gprs[] = {REG_EAX, REG_ECX, REG_EDX, REG_EBX,
                                  REG_ESP, REG_EBP, REG_ESI, REG_EDI};
  for (int Iter = 0; Iter != 500; ++Iter) {
    Register Base = Gprs[Rand.nextBelow(8)];
    Register Index = Gprs[Rand.nextBelow(8)];
    if (Index == REG_ESP)
      Index = REG_NULL;
    Operand Mem = Operand::mem(Base, int32_t(Rand.nextInRange(-5000, 5000)),
                               4, Index, Index == REG_NULL ? 1 : 4);
    Operand Srcs[MaxSrcs], Dsts[MaxDsts];
    unsigned NumSrcs = 0, NumDsts = 0;
    Operand Ex[2] = {Operand::reg(Gprs[Rand.nextBelow(8)]), Mem};
    ASSERT_TRUE(
        buildCanonicalOperands(OP_mov, Ex, 2, Srcs, NumSrcs, Dsts, NumDsts));
    uint8_t Buf[MaxInstrLength];
    int Len = encodeInstr(OP_mov, 0, Srcs, NumSrcs, Dsts, NumDsts, 0, Buf);
    ASSERT_GT(Len, 0);
    EXPECT_EQ(decodeLength(Buf, size_t(Len)), Len);
  }
}

} // namespace

namespace {

/// Robustness: the decoder must never misbehave on arbitrary bytes — it
/// either rejects them or reports a length within bounds, and the three
/// decoding strategies always agree.
class DecodeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecodeFuzz, ArbitraryBytesNeverBreakTheDecoder) {
  Rng Rand(GetParam());
  uint8_t Buf[MaxInstrLength + 4];
  for (int Iter = 0; Iter != 20000; ++Iter) {
    size_t Len = 1 + Rand.nextBelow(sizeof(Buf));
    for (size_t I = 0; I != Len; ++I)
      Buf[I] = uint8_t(Rand.next());

    int L0 = decodeLength(Buf, Len);
    Opcode Op;
    uint32_t Eflags;
    int L2;
    bool Ok2 = decodeOpcodeAndEflags(Buf, Len, Op, Eflags, L2);
    DecodedInstr DI;
    bool Ok3 = decodeInstr(Buf, Len, 0x1000, DI);

    // Agreement across strategies.
    EXPECT_EQ(L0 >= 0, Ok2);
    if (Ok2) {
      EXPECT_EQ(L0, L2);
    }
    if (Ok3) {
      ASSERT_TRUE(Ok2);
      EXPECT_EQ(DI.Length, L2);
      EXPECT_EQ(DI.Op, Op);
      EXPECT_LE(DI.Length, MaxInstrLength);
      EXPECT_LE(size_t(DI.Length), Len);
      // Whatever decoded must re-encode (possibly shorter, never invalid),
      // unless it used a non-canonical-but-valid byte form.
      uint8_t Out[MaxInstrLength];
      EncodeOptions Opts;
      Opts.AllowShortBranches = true;
      int Re = encodeInstr(DI, 0x1000, Out, Opts);
      EXPECT_GT(Re, 0) << "decoded instruction failed to re-encode";
    }
    // Full decode success implies level-2 success; level-2 may succeed
    // where full decode rejects (e.g. lea with a register operand).
    if (Ok3) {
      EXPECT_TRUE(Ok2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(101, 202));

} // namespace
