//===- tests/vm_test.cpp - Simulated machine tests ---------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Instr.h"
#include "support/Arena.h"
#include "vm/Syscall.h"

using namespace rio;
using namespace rio::test;

namespace {

TEST(VmBasic, ExitCode) {
  NativeRun R = runSource(R"(
    main:
      mov ebx, 42
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_TRUE(R.Output.empty());
}

TEST(VmBasic, PrintInt) {
  NativeRun R = runSource(R"(
    main:
      mov ebx, -123
      mov eax, 2
      int 0x80
      mov ebx, 7
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.Output, "-123\n7\n");
}

TEST(VmBasic, WriteSyscall) {
  NativeRun R = runSource(R"(
    msg: .asciz "hello\n"
    main:
      mov ebx, 1
      mov ecx, msg
      mov edx, 6
      mov eax, 4
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.Output, "hello\n");
}

TEST(VmBasic, HltExitsCleanly) {
  NativeRun R = runSource(R"(
    main:
      hlt
  )");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(VmArith, AddSubFlags) {
  // 0xFFFFFFFF + 1 = 0 with CF=1 ZF=1; then jb taken.
  NativeRun R = runSource(R"(
    main:
      mov eax, 0xFFFFFFFF
      add eax, 1
      jnb bad
      jnz bad
      mov ebx, 1
      jmp done
    bad:
      mov ebx, 0
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(VmArith, SignedOverflow) {
  // INT_MAX + 1 overflows: OF set, jo taken.
  NativeRun R = runSource(R"(
    main:
      mov eax, 0x7FFFFFFF
      add eax, 1
      jo good
      mov ebx, 0
      jmp done
    good:
      mov ebx, 1
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(VmArith, IncPreservesCarry) {
  // Set CF via cmp (0 < 1), then inc; CF must survive for the jb.
  NativeRun R = runSource(R"(
    main:
      mov ecx, 0
      cmp ecx, 1
      inc ecx
      jb carry_alive
      mov ebx, 0
      jmp done
    carry_alive:
      mov ebx, 1
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(VmArith, AddClearsCarryWhereIncWouldNot) {
  // Same as above but with add 1: CF is rewritten (to 0 here).
  NativeRun R = runSource(R"(
    main:
      mov ecx, 0
      cmp ecx, 1
      add ecx, 1
      jb bad
      mov ebx, 1
      jmp done
    bad:
      mov ebx, 0
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(VmArith, MulDivCdq) {
  NativeRun R = runSource(R"(
    main:
      mov eax, 100000
      mov ecx, 30000
      mul ecx             ; edx:eax = 3,000,000,000
      mov ebx, edx        ; high word -> 0 (3e9 < 2^32)
      mov eax, 2
      int 0x80            ; print 0? no: print ebx... print_int prints ebx
      mov eax, -7
      cdq
      mov ecx, 2
      idiv ecx            ; eax = -3, edx = -1
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov ebx, edx
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.Output, "0\n-3\n-1\n");
}

TEST(VmArith, DivideByZeroFaults) {
  Program P = assembleOrDie(R"(
    main:
      mov eax, 5
      cdq
      mov ecx, 0
      idiv ecx
      hlt
  )");
  NativeRun R = runNative(P);
  EXPECT_EQ(R.Status, RunStatus::Faulted);
  EXPECT_NE(R.FaultReason.find("divide"), std::string::npos);
}

TEST(VmArith, Shifts) {
  NativeRun R = runSource(R"(
    main:
      mov eax, 1
      shl eax, 4          ; 16
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov eax, -32
      sar eax, 2          ; -8
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov eax, 0x80000000
      shr eax, 31         ; 1
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov ecx, 3
      mov eax, 1
      shl eax, cl         ; 8
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.Output, "16\n-8\n1\n8\n");
}

TEST(VmMemory, LoadsStoresAndAddressing) {
  NativeRun R = runSource(R"(
    arr: .word 10 20 30 40
    b:   .byte 0xFF 0x7F
    main:
      mov esi, arr
      mov eax, [esi+4]        ; 20
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov ecx, 3
      mov eax, [arr+ecx*4]    ; 40
      mov ebx, eax
      mov eax, 2
      int 0x80
      movzxb eax, [b]         ; 255
      mov ebx, eax
      mov eax, 2
      int 0x80
      movsxb eax, [b]         ; -1
      mov [arr], eax          ; arr[0] = -1
      mov ebx, eax
      mov eax, 2
      int 0x80
      mov ebx, [arr]
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.Output, "20\n40\n255\n-1\n-1\n");
}

TEST(VmMemory, OutOfBoundsFaults) {
  Program P = assembleOrDie(R"(
    main:
      mov eax, [0xFFFFFFF0]
      hlt
  )");
  NativeRun R = runNative(P);
  EXPECT_EQ(R.Status, RunStatus::Faulted);
}

TEST(VmStack, PushPopCallRet) {
  NativeRun R = runSource(R"(
    main:
      mov eax, 5
      call double_it
      mov ebx, eax
      mov eax, 2
      int 0x80          ; 10
      push 33
      pop ebx
      mov eax, 2
      int 0x80          ; 33
      mov ebx, 0
      mov eax, 1
      int 0x80
    double_it:
      add eax, eax
      ret
  )");
  EXPECT_EQ(R.Output, "10\n33\n");
}

TEST(VmStack, RetImmPopsArgs) {
  NativeRun R = runSource(R"(
    main:
      mov edi, esp
      push 7
      push 8
      call take_two
      cmp esp, edi          ; callee popped its args
      jnz bad
      mov ebx, eax
      mov eax, 2
      int 0x80              ; 15
      mov ebx, 0
      mov eax, 1
      int 0x80
    bad:
      mov ebx, 1
      mov eax, 1
      int 0x80
    take_two:
      mov eax, [esp+4]      ; 8
      add eax, [esp+8]      ; +7
      ret 8
  )");
  EXPECT_EQ(R.Output, "15\n");
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(VmIndirect, JumpTableAndIndirectCall) {
  NativeRun R = runSource(R"(
    table: .word h0 h1 h2
    main:
      mov esi, 0
    loop:
      mov eax, esi
      call [table+eax*4]
      mov ebx, eax
      mov eax, 2
      int 0x80
      inc esi
      cmp esi, 3
      jnz loop
      mov ebx, 0
      mov eax, 1
      int 0x80
    h0:
      mov eax, 100
      ret
    h1:
      mov eax, 200
      ret
    h2:
      mov eax, 300
      ret
  )");
  EXPECT_EQ(R.Output, "100\n200\n300\n");
}

TEST(VmFp, ScalarDoubleArithmetic) {
  NativeRun R = runSource(R"(
    vals: .f64 1.5 2.25
    main:
      movsd xmm0, [vals]
      movsd xmm1, [vals+8]
      addsd xmm0, xmm1          ; 3.75
      mulsd xmm0, xmm1          ; 8.4375
      mov eax, 4
      cvtsi2sd xmm2, eax        ; 4.0
      mulsd xmm0, xmm2          ; 33.75
      cvttsd2si ebx, xmm0       ; 33
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.Output, "33\n");
}

TEST(VmFp, UcomisdComparison) {
  NativeRun R = runSource(R"(
    vals: .f64 1.0 2.0
    main:
      movsd xmm0, [vals]
      movsd xmm1, [vals+8]
      ucomisd xmm0, xmm1
      jb less                   ; 1.0 < 2.0: CF set
      mov ebx, 0
      jmp done
    less:
      mov ebx, 1
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(VmFlags, SavefRestfRoundTrip) {
  NativeRun R = runSource(R"(
    slot: .word 0
    main:
      mov eax, 0xFFFFFFFF
      add eax, 1            ; CF=1 ZF=1
      savef [slot]
      mov eax, 5
      add eax, 5            ; clobbers flags (CF=0 ZF=0)
      restf [slot]
      jnb bad               ; CF must be restored to 1
      jnz bad
      mov ebx, 1
      jmp done
    bad:
      mov ebx, 0
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(VmCost, LoopCostScalesLinearly) {
  auto TimeFor = [](int N) {
    Program P = assembleOrDie(
        "main:\n mov ecx, " + std::to_string(N) + "\nloop:\n dec ecx\n jnz loop\n hlt\n");
    return runNative(P).Cycles;
  };
  uint64_t C1 = TimeFor(1000);
  uint64_t C2 = TimeFor(2000);
  // Roughly double (predictor warmup makes it slightly sublinear).
  EXPECT_GT(C2, C1 + (C1 / 2));
  EXPECT_LT(C2, C1 * 5 / 2);
}

TEST(VmCost, MispredictionCostsShow) {
  // A data-dependent unpredictable branch pattern costs more than a
  // perfectly biased one with identical instruction counts.
  auto Run = [](const char *Sel) {
    std::string Src = R"(
    main:
      mov esi, 12345        ; lcg state
      mov edi, 0            ; counter
      mov ecx, 20000
    loop:
      imul esi, esi, 1103515245
      add esi, 12345
      mov eax, esi
      shr eax, )";
    Src += Sel;
    Src += R"(
      test eax, 1
      jz skip
      inc edi
    skip:
      dec ecx
      jnz loop
      hlt
  )";
    return runNative(assembleOrDie(Src)).Cycles;
  };
  uint64_t Random = Run("16");  // low-entropy-free bit: unpredictable
  uint64_t Biased = Run("31");  // sign bit of LCG: also varies... use 0
  (void)Biased;
  uint64_t AlwaysZero = Run("1");
  (void)AlwaysZero;
  // The unpredictable variant must be measurably slower than at least one
  // of the biased ones.
  EXPECT_GT(Random, std::min(Biased, AlwaysZero));
}

TEST(VmCost, P3vsP4IncCost) {
  Program P = assembleOrDie(R"(
    main:
      mov ecx, 10000
    loop:
      inc eax
      inc eax
      inc eax
      inc eax
      dec ecx
      jnz loop
      hlt
  )");
  MachineConfig P4;
  P4.Cost = CostModel::pentiumIV();
  MachineConfig P3;
  P3.Cost = CostModel::pentiumIII();
  uint64_t CyclesP4 = runNative(P, P4).Cycles;
  uint64_t CyclesP3 = runNative(P, P3).Cycles;
  EXPECT_GT(CyclesP4, CyclesP3) << "inc must be slower on the P4 model";
}

TEST(VmDeterminism, SameProgramSameCycles) {
  Program P = assembleOrDie(R"(
    main:
      mov ecx, 5000
      mov eax, 0
    loop:
      add eax, ecx
      dec ecx
      jnz loop
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
  NativeRun A = runNative(P);
  NativeRun B = runNative(P);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.ExitCode, int(5000 * 5001 / 2));
}

} // namespace

namespace {

TEST(Predictors, TwoBitCounterHysteresis) {
  BranchPredictors P;
  AppPc Pc = 0x1000;
  // Initial state is weakly not-taken: the first taken branch mispredicts.
  EXPECT_FALSE(P.predictCond(Pc, true));
  // One taken -> strongly-enough taken to predict the next correctly.
  EXPECT_TRUE(P.predictCond(Pc, true));
  EXPECT_TRUE(P.predictCond(Pc, true));
  // A single reversal in a taken stream mispredicts once...
  EXPECT_FALSE(P.predictCond(Pc, false));
  // ...but hysteresis keeps predicting taken right after.
  EXPECT_TRUE(P.predictCond(Pc, true));
}

TEST(Predictors, BtbTracksLastTarget) {
  BranchPredictors P;
  AppPc Site = 0x2000;
  EXPECT_FALSE(P.predictIndirect(Site, 0x3000)); // cold
  EXPECT_TRUE(P.predictIndirect(Site, 0x3000));  // repeated target
  EXPECT_FALSE(P.predictIndirect(Site, 0x4000)); // changed target
  EXPECT_TRUE(P.predictIndirect(Site, 0x4000));
}

TEST(Predictors, ReturnStackMatchesCallDepth) {
  BranchPredictors P;
  P.pushReturn(0x1111);
  P.pushReturn(0x2222);
  P.pushReturn(0x3333);
  EXPECT_TRUE(P.popReturn(0x3333));
  EXPECT_TRUE(P.popReturn(0x2222));
  EXPECT_FALSE(P.popReturn(0x9999)); // wrong return address
  EXPECT_FALSE(P.popReturn(0x1111)); // stack already consumed
}

TEST(Predictors, RasOverflowWrapsGracefully) {
  BranchPredictors P;
  for (unsigned I = 0; I != 100; ++I) // deeper than the 64-entry stack
    P.pushReturn(0x1000 + I * 4);
  // The newest 64 still predict correctly.
  for (unsigned I = 99;; --I) {
    bool Hit = P.popReturn(0x1000 + I * 4);
    if (I >= 36) {
      EXPECT_TRUE(Hit) << I;
    }
    if (I == 36)
      break;
  }
}

//===----------------------------------------------------------------------===//
// Decode cache (direct-mapped, generation-invalidated)
//===----------------------------------------------------------------------===//

/// Encodes \p I at \p Pc in \p M's memory; returns the encoded length.
unsigned placeInstr(Machine &M, uint32_t Pc, Instr *I) {
  uint8_t Buf[MaxInstrLength];
  int Len = I->encode(Pc, Buf, false);
  EXPECT_GT(Len, 0);
  EXPECT_TRUE(M.mem().writeBlock(Pc, Buf, unsigned(Len)));
  return unsigned(Len);
}

TEST(VmDecodeCache, AliasingPcsNeverServeWrongDecode) {
  Machine M;
  Arena A(1024);
  // Two pcs exactly DecodeCacheLines apart map to the same cache line.
  uint32_t Pc1 = 0x100;
  uint32_t Pc2 = Pc1 + Machine::DecodeCacheLines;
  placeInstr(M, Pc1, Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX),
                                                    Operand::imm(111, 4)}));
  placeInstr(M, Pc2, Instr::createSynth(A, OP_mov, {Operand::reg(REG_EBX),
                                                    Operand::imm(222, 4)}));

  const DecodedInstr *D1 = M.fetchDecode(Pc1);
  ASSERT_NE(D1, nullptr);
  EXPECT_EQ(D1->Op, OP_mov);
  EXPECT_EQ(D1->Srcs[0].getImm(), 111);

  // The aliasing pc evicts Pc1's line but must decode its own bytes.
  const DecodedInstr *D2 = M.fetchDecode(Pc2);
  ASSERT_NE(D2, nullptr);
  EXPECT_EQ(D2->Srcs[0].getImm(), 222);
  EXPECT_EQ(D2->Dsts[0].getReg(), REG_EBX);

  // Ping-pong: refilling after eviction still yields the right decode.
  D1 = M.fetchDecode(Pc1);
  ASSERT_NE(D1, nullptr);
  EXPECT_EQ(D1->Srcs[0].getImm(), 111);
  EXPECT_EQ(D1->Dsts[0].getReg(), REG_EAX);
}

TEST(VmDecodeCache, RangeInvalidationDropsStaleDecode) {
  Machine M;
  Arena A(1024);
  uint32_t Pc = 0x200;
  unsigned Len = placeInstr(
      M, Pc,
      Instr::createSynth(A, OP_mov,
                         {Operand::reg(REG_EAX), Operand::imm(1, 4)}));
  const DecodedInstr *D = M.fetchDecode(Pc);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Srcs[0].getImm(), 1);

  // Overwrite the bytes and invalidate: the next fetch must re-decode.
  placeInstr(M, Pc, Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX),
                                                   Operand::imm(2, 4)}));
  M.invalidateDecodeRange(Pc, Pc + Len);
  D = M.fetchDecode(Pc);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Srcs[0].getImm(), 2);
}

TEST(VmDecodeCache, InvalidationOfOneLineSparesAliasedOther) {
  Machine M;
  Arena A(1024);
  // Same decode-cache line, different write-watch lines: invalidating
  // around Pc1 bumps only Pc1's line generation. Pc2's decode, filled
  // afterwards into the shared line, must survive an invalidation aimed
  // at Pc1's range, and Pc1 must re-decode fresh bytes on its next fetch.
  uint32_t Pc1 = 0x300;
  uint32_t Pc2 = Pc1 + Machine::DecodeCacheLines;
  unsigned Len1 = placeInstr(
      M, Pc1,
      Instr::createSynth(A, OP_mov,
                         {Operand::reg(REG_EAX), Operand::imm(10, 4)}));
  placeInstr(M, Pc2, Instr::createSynth(A, OP_mov, {Operand::reg(REG_ECX),
                                                    Operand::imm(20, 4)}));

  ASSERT_NE(M.fetchDecode(Pc1), nullptr);
  placeInstr(M, Pc1, Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX),
                                                    Operand::imm(11, 4)}));
  M.invalidateDecodeRange(Pc1, Pc1 + Len1);

  const DecodedInstr *D2 = M.fetchDecode(Pc2);
  ASSERT_NE(D2, nullptr);
  EXPECT_EQ(D2->Srcs[0].getImm(), 20);

  const DecodedInstr *D1 = M.fetchDecode(Pc1);
  ASSERT_NE(D1, nullptr);
  EXPECT_EQ(D1->Srcs[0].getImm(), 11);
}

TEST(VmDecodeCache, OutOfRangePcReturnsNull) {
  Machine M;
  EXPECT_EQ(M.fetchDecode(uint32_t(M.mem().size())), nullptr);
  EXPECT_EQ(M.fetchDecode(~0u), nullptr);
}

} // namespace
