//===- tests/integration_test.cpp - Random-program transparency fuzzing --------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based end-to-end testing: generate random (but structured and
/// terminating) RIO-32 programs and assert the central transparency
/// invariant — running under any runtime configuration with any client
/// yields exactly the application behaviour (output + exit code) of a
/// native run, deterministically.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "clients/Clients.h"
#include "core/Runtime.h"
#include "support/Rng.h"

#include <string>

using namespace rio;
using namespace rio::test;

namespace {

/// Generates a random structured program:
///   - F leaf-to-root ordered functions (calls go only to higher indices,
///     so there is no unbounded recursion);
///   - each function has arithmetic, memory traffic into a private array,
///     forward if/else diamonds, one bounded counting loop, and calls;
///   - main runs a bounded driver loop, prints a register checksum, and
///     exits 0.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : Rand(Seed) {}

  std::string generate() {
    std::string S = ".entry main\n";
    S += "data: .space 4096\n";
    int NumFuncs = int(Rand.nextInRange(3, 6));
    // A function-pointer table drives indirect calls (exercising call
    // mangling, the IBL, and trace inlining of indirect branches).
    S += "ftab: .word";
    for (int F = 0; F != NumFuncs; ++F)
      S += " func" + std::to_string(F);
    S += "\n";
    NumFtab = NumFuncs;

    S += "main:\n";
    S += "  mov esi, " + std::to_string(Rand.nextInRange(0, 1000)) + "\n";
    S += "  mov edi, " + std::to_string(Rand.nextInRange(8, 40)) + "\n";
    S += "mainloop:\n";
    S += body(/*Depth=*/0, /*FuncIdx=*/-1, NumFuncs);
    S += "  dec edi\n  jnz mainloop\n";
    S += "  and esi, 0xFFFFFF\n";
    S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
    S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";

    for (int F = 0; F != NumFuncs; ++F) {
      S += "func" + std::to_string(F) + ":\n";
      S += body(/*Depth=*/0, F, NumFuncs);
      S += "  ret\n";
    }
    return S;
  }

private:
  /// Registers the generator plays with (esp/ebp excluded; esi is the
  /// checksum, edi/ecx are loop counters managed by structure emitters).
  const char *randReg() {
    static const char *const Regs[] = {"eax", "ebx", "edx"};
    return Regs[Rand.nextBelow(3)];
  }

  std::string label(const char *Stem) {
    return std::string(Stem) + std::to_string(++LabelId);
  }

  std::string arith() {
    const char *R = randReg();
    switch (Rand.nextBelow(8)) {
    case 0:
      return std::string("  add ") + R + ", " +
             std::to_string(Rand.nextInRange(-100, 100)) + "\n";
    case 1:
      return std::string("  xor ") + R + ", " + randReg() + "\n";
    case 2:
      return std::string("  imul ") + R + ", " + randReg() + ", " +
             std::to_string(Rand.nextInRange(1, 17)) + "\n";
    case 3:
      return std::string("  inc ") + R + "\n";
    case 4:
      return std::string("  dec ") + R + "\n";
    case 5:
      return std::string("  shl ") + R + ", " +
             std::to_string(Rand.nextInRange(1, 7)) + "\n";
    case 6:
      return std::string("  neg ") + R + "\n";
    default:
      return std::string("  lea ") + R + ", [" + randReg() + "+" + randReg() +
             "*2+" + std::to_string(Rand.nextInRange(0, 64)) + "]\n";
    }
  }

  std::string memOp() {
    // Bounded access into the data array: mask an index register first.
    const char *R = randReg();
    const char *V = randReg();
    std::string S;
    S += std::string("  and ") + R + ", 1020\n";
    if (Rand.chance(1, 2))
      S += std::string("  mov [data+") + R + "], " + V + "\n";
    else
      S += std::string("  mov ") + V + ", [data+" + R + "]\n";
    return S;
  }

  std::string diamond(int Depth, int FuncIdx, int NumFuncs) {
    std::string Else = label("else");
    std::string End = label("endif");
    static const char *const Ccs[] = {"jz", "jnz", "jl", "jge", "js", "jns"};
    std::string S;
    S += std::string("  test ") + randReg() + ", " +
         std::to_string(1 << Rand.nextBelow(8)) + "\n";
    S += std::string("  ") + Ccs[Rand.nextBelow(6)] + " " + Else + "\n";
    S += stmts(Depth + 1, FuncIdx, NumFuncs, 2);
    S += "  jmp " + End + "\n";
    S += Else + ":\n";
    S += stmts(Depth + 1, FuncIdx, NumFuncs, 2);
    S += End + ":\n";
    return S;
  }

  std::string loop(int Depth, int FuncIdx, int NumFuncs) {
    std::string Top = label("loop");
    std::string S;
    S += "  push ecx\n";
    S += "  mov ecx, " + std::to_string(Rand.nextInRange(2, 12)) + "\n";
    S += Top + ":\n";
    S += stmts(Depth + 1, FuncIdx, NumFuncs, 2);
    S += "  dec ecx\n  jnz " + Top + "\n";
    S += "  pop ecx\n";
    return S;
  }

  std::string call(int FuncIdx, int NumFuncs) {
    // Calls only go "up" so the program terminates.
    int First = FuncIdx + 1;
    if (First >= NumFuncs)
      return arith();
    int Target = int(Rand.nextInRange(First, NumFuncs - 1));
    if (Rand.chance(1, 3)) {
      // Indirect call through the function table; the index register is
      // masked into the callable (higher-index) range.
      std::string S;
      S += "  mov eax, " + std::to_string(Target) + "\n";
      S += "  call [ftab+eax*4]\n";
      return S;
    }
    return "  call func" + std::to_string(Target) + "\n";
  }

  std::string jecxzDiamond() {
    // jecxz: the one rel8-only branch; exercises its special mangling.
    std::string Skip = label("jcx");
    std::string S;
    S += "  push ecx\n";
    S += "  and ecx, " + std::to_string(Rand.nextBelow(2)) + "\n";
    S += "  jecxz " + Skip + "\n";
    S += arith();
    S += Skip + ":\n";
    S += "  pop ecx\n";
    return S;
  }

  std::string checksum() {
    return std::string("  add esi, ") + randReg() + "\n" +
           "  and esi, 0xFFFFFF\n";
  }

  std::string stmts(int Depth, int FuncIdx, int NumFuncs, int Count) {
    std::string S;
    for (int I = 0; I != Count; ++I) {
      unsigned Pick = Rand.nextBelow(Depth >= 2 ? 6 : 10);
      if (Pick < 4)
        S += arith();
      else if (Pick < 5)
        S += memOp();
      else if (Pick < 6)
        S += checksum();
      else if (Pick < 8)
        S += diamond(Depth, FuncIdx, NumFuncs);
      else if (Pick < 9)
        S += Rand.chance(1, 4) ? jecxzDiamond()
                               : loop(Depth, FuncIdx, NumFuncs);
      else
        S += call(FuncIdx, NumFuncs);
    }
    return S;
  }

  std::string body(int Depth, int FuncIdx, int NumFuncs) {
    return stmts(Depth, FuncIdx, NumFuncs, int(Rand.nextInRange(3, 7))) +
           checksum();
  }

  Rng Rand;
  unsigned LabelId = 0;
  int NumFtab = 0;
};

class TransparencyFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransparencyFuzz, AllConfigsAllClientsMatchNative) {
  ProgramGen Gen(GetParam());
  std::string Source = Gen.generate();
  Program Prog;
  std::string Error;
  ASSERT_TRUE(assemble(Source, Prog, Error)) << Error << "\n" << Source;

  NativeRun Native = runNative(Prog);
  ASSERT_EQ(Native.Status, RunStatus::Exited)
      << Native.FaultReason << "\n"
      << Source;

  const RuntimeConfig Configs[] = {
      RuntimeConfig::emulate(),    RuntimeConfig::bbCacheOnly(),
      RuntimeConfig::linkDirect(), RuntimeConfig::linkIndirect(),
      RuntimeConfig::full(),
  };
  for (const RuntimeConfig &Config : Configs) {
    for (int WithClients = 0; WithClients != 2; ++WithClients) {
      if (Config.Mode == ExecMode::Emulate && WithClients)
        continue; // emulation runs no cache code, so no client effects
      Machine M;
      ASSERT_TRUE(loadProgram(M, Prog));
      CustomTracesClient C1;
      RlrClient C2;
      StrengthReduceClient C3;
      IBDispatchClient C4;
      MultiClient All({&C1, &C2, &C3, &C4});
      Runtime RT(M, Config, WithClients ? &All : nullptr);
      RunResult R = RT.run();
      ASSERT_EQ(R.Status, RunStatus::Exited)
          << R.FaultReason << " (clients=" << WithClients << ")\n"
          << Source;
      EXPECT_EQ(R.ExitCode, Native.ExitCode) << Source;
      EXPECT_EQ(M.output(), Native.Output) << Source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencyFuzz,
                         ::testing::Range(uint64_t(1), uint64_t(61)));

TEST(Determinism, RepeatRunsAreCycleIdentical) {
  ProgramGen Gen(99);
  Program Prog;
  std::string Error;
  ASSERT_TRUE(assemble(Gen.generate(), Prog, Error)) << Error;
  auto Run = [&] {
    Machine M;
    loadProgram(M, Prog);
    Runtime RT(M, RuntimeConfig::full());
    return RT.run();
  };
  RunResult A = Run();
  RunResult B = Run();
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Instructions, B.Instructions);
}

} // namespace
