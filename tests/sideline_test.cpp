//===- tests/sideline_test.cpp - Sideline optimization tests -------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "clients/Clients.h"
#include "core/Sideline.h"
#include "workloads/Workloads.h"

using namespace rio;
using namespace rio::test;

namespace {

TEST(Sideline, OptimizesTracesOffTheCriticalPath) {
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RlrClient Inner;
  SidelineOptimizer Sideline(Inner);
  Runtime RT(M, RuntimeConfig::full(), &Sideline);
  RunResult R = runWithSideline(RT, Sideline);
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  EXPECT_GE(Sideline.tracesOptimized(), 1u);
  EXPECT_GE(Inner.loadsForwarded() + Inner.loadsRemoved(), 1u);
  EXPECT_GE(RT.stats().get("fragments_replaced"),
            Sideline.tracesOptimized());
}

TEST(Sideline, StillDeliversTheSpeedup) {
  // On mgrid the deferred redundant-load removal must still beat the
  // unoptimized runtime once the sideline has swapped the hot trace in.
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, 0);

  auto Run = [&](bool WithSideline) {
    Machine M;
    loadProgram(M, P);
    RlrClient Inner;
    if (!WithSideline) {
      Runtime RT(M, RuntimeConfig::full(), nullptr);
      return RT.run().Cycles;
    }
    SidelineOptimizer Sideline(Inner);
    Runtime RT(M, RuntimeConfig::full(), &Sideline);
    return runWithSideline(RT, Sideline).Cycles;
  };
  uint64_t Base = Run(false);
  uint64_t Sideline = Run(true);
  EXPECT_LT(Sideline, Base);
}

/// A deliberately heavyweight optimizer: models an aggressive analysis
/// (e.g. value-range or scheduling passes) costing many cycles per trace.
/// Exactly the kind of client whose cost the paper's sideline proposal
/// moves off the application's critical path.
class ExpensiveOptimizer : public Client {
public:
  unsigned CyclesPerTrace = 25000;
  void onTrace(Runtime &RT, AppPc Tag, InstrList &Trace) override {
    Inner.onTrace(RT, Tag, Trace);
    RT.machine().chargeCycles(CyclesPerTrace); // the heavy analysis
  }
  RlrClient Inner;
};

TEST(Sideline, PaysOffForExpensiveOptimizations) {
  // The sideline's raison d'etre (paper Section 3.4): expensive
  // optimization time comes off the application's critical path — the
  // synchronous client eats the full analysis cost, the sideline only the
  // replacement's relink cost.
  for (const char *Name : {"gcc", "perlbmk", "mgrid"}) {
    const Workload *W = findWorkload(Name);
    Program P = buildWorkload(*W, 0);

    uint64_t Sync;
    {
      Machine M;
      loadProgram(M, P);
      ExpensiveOptimizer Opt;
      Runtime RT(M, RuntimeConfig::full(), &Opt);
      Sync = RT.run().Cycles;
    }
    uint64_t Side;
    {
      Machine M;
      loadProgram(M, P);
      ExpensiveOptimizer Opt;
      SidelineOptimizer Sideline(Opt);
      Runtime RT(M, RuntimeConfig::full(), &Sideline);
      Side = runWithSideline(RT, Sideline).Cycles;
    }
    EXPECT_LT(Side, Sync) << Name;
  }
}

TEST(Sideline, CheapClientsCostAboutTheSame) {
  // For lightweight transformations the sideline's replacement sync cost
  // roughly cancels its deferral benefit: it must at least stay within a
  // few percent (its value is for heavyweight optimizers, above).
  const Workload *W = findWorkload("perlbmk");
  Program P = buildWorkload(*W, 0);
  uint64_t Sync;
  {
    Machine M;
    loadProgram(M, P);
    StrengthReduceClient C;
    Runtime RT(M, RuntimeConfig::full(), &C);
    Sync = RT.run().Cycles;
  }
  uint64_t Side;
  {
    Machine M;
    loadProgram(M, P);
    StrengthReduceClient C;
    SidelineOptimizer Sideline(C);
    Runtime RT(M, RuntimeConfig::full(), &Sideline);
    Side = runWithSideline(RT, Sideline).Cycles;
  }
  EXPECT_LT(double(Side), double(Sync) * 1.05);
}

TEST(Sideline, QueueDrainsAndSurvivesFlushes) {
  Program P = buildWorkload(*findWorkload("crafty"), 30);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  StrengthReduceClient Inner;
  SidelineOptimizer Sideline(Inner);
  Runtime RT(M, RuntimeConfig::full(), &Sideline);
  RunResult R = runWithSideline(RT, Sideline, /*Quantum=*/500);
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  // Whatever remains queued at exit is simply unprocessed; nothing stale
  // blew up, and flush/replace notifications kept the queue consistent.
  RT.flushCaches();
  EXPECT_FALSE(Sideline.processOne(RT)); // all queued tags now vanished
}

} // namespace
