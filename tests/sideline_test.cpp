//===- tests/sideline_test.cpp - Sideline optimization tests -------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "clients/Clients.h"
#include "core/Sideline.h"
#include "persist/CacheImage.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <vector>

using namespace rio;
using namespace rio::test;

namespace {

TEST(Sideline, OptimizesTracesOffTheCriticalPath) {
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RlrClient Inner;
  SidelineOptimizer Sideline(Inner);
  Runtime RT(M, RuntimeConfig::full(), &Sideline);
  RunResult R = runWithSideline(RT, Sideline);
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  EXPECT_GE(Sideline.tracesOptimized(), 1u);
  EXPECT_GE(Inner.loadsForwarded() + Inner.loadsRemoved(), 1u);
  EXPECT_GE(RT.stats().get("fragments_replaced"),
            Sideline.tracesOptimized());
}

TEST(Sideline, StillDeliversTheSpeedup) {
  // On mgrid the deferred redundant-load removal must still beat the
  // unoptimized runtime once the sideline has swapped the hot trace in.
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, 0);

  auto Run = [&](bool WithSideline) {
    Machine M;
    loadProgram(M, P);
    RlrClient Inner;
    if (!WithSideline) {
      Runtime RT(M, RuntimeConfig::full(), nullptr);
      return RT.run().Cycles;
    }
    SidelineOptimizer Sideline(Inner);
    Runtime RT(M, RuntimeConfig::full(), &Sideline);
    return runWithSideline(RT, Sideline).Cycles;
  };
  uint64_t Base = Run(false);
  uint64_t Sideline = Run(true);
  EXPECT_LT(Sideline, Base);
}

/// A deliberately heavyweight optimizer: models an aggressive analysis
/// (e.g. value-range or scheduling passes) costing many cycles per trace.
/// Exactly the kind of client whose cost the paper's sideline proposal
/// moves off the application's critical path.
class ExpensiveOptimizer : public Client {
public:
  unsigned CyclesPerTrace = 25000;
  void onTrace(Runtime &RT, AppPc Tag, InstrList &Trace) override {
    Inner.onTrace(RT, Tag, Trace);
    RT.machine().chargeCycles(CyclesPerTrace); // the heavy analysis
  }
  RlrClient Inner;
};

TEST(Sideline, PaysOffForExpensiveOptimizations) {
  // The sideline's raison d'etre (paper Section 3.4): expensive
  // optimization time comes off the application's critical path — the
  // synchronous client eats the full analysis cost, the sideline only the
  // replacement's relink cost.
  for (const char *Name : {"gcc", "perlbmk", "mgrid"}) {
    const Workload *W = findWorkload(Name);
    Program P = buildWorkload(*W, 0);

    uint64_t Sync;
    {
      Machine M;
      loadProgram(M, P);
      ExpensiveOptimizer Opt;
      Runtime RT(M, RuntimeConfig::full(), &Opt);
      Sync = RT.run().Cycles;
    }
    uint64_t Side;
    {
      Machine M;
      loadProgram(M, P);
      ExpensiveOptimizer Opt;
      SidelineOptimizer Sideline(Opt);
      Runtime RT(M, RuntimeConfig::full(), &Sideline);
      Side = runWithSideline(RT, Sideline).Cycles;
    }
    EXPECT_LT(Side, Sync) << Name;
  }
}

TEST(Sideline, CheapClientsCostAboutTheSame) {
  // For lightweight transformations the sideline's replacement sync cost
  // roughly cancels its deferral benefit: it must at least stay within a
  // few percent (its value is for heavyweight optimizers, above).
  const Workload *W = findWorkload("perlbmk");
  Program P = buildWorkload(*W, 0);
  uint64_t Sync;
  {
    Machine M;
    loadProgram(M, P);
    StrengthReduceClient C;
    Runtime RT(M, RuntimeConfig::full(), &C);
    Sync = RT.run().Cycles;
  }
  uint64_t Side;
  {
    Machine M;
    loadProgram(M, P);
    StrengthReduceClient C;
    SidelineOptimizer Sideline(C);
    Runtime RT(M, RuntimeConfig::full(), &Sideline);
    Side = runWithSideline(RT, Sideline).Cycles;
  }
  EXPECT_LT(double(Side), double(Sync) * 1.05);
}

//===----------------------------------------------------------------------===//
// Asynchronous mode: a real host worker thread plus versioned publication
//===----------------------------------------------------------------------===//

struct AsyncRun {
  uint64_t Cycles = 0;
  std::string Output;
  uint64_t Published = 0;
  uint64_t StaleDrops = 0;
  uint64_t Epoch = 0;
  uint64_t Enqueued = 0;
};

/// One full async-sideline run of \p P with RLR as the inner optimizer.
AsyncRun runAsyncOnce(const Program &P, uint64_t Seed) {
  Machine M;
  EXPECT_TRUE(loadProgram(M, P));
  RlrClient Inner;
  SidelineOptimizer Sideline(Inner, SidelineMode::Async, Seed);
  RuntimeConfig Config = RuntimeConfig::full();
  Config.SidelinePump = &Sideline;
  Runtime RT(M, Config, &Sideline);
  RunResult R = runWithSideline(RT, Sideline);
  EXPECT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  return {R.Cycles,
          M.output(),
          Sideline.versionsPublished(),
          Sideline.staleDrops(),
          RT.publicationEpoch(),
          RT.stats().get("sideline_jobs_enqueued")};
}

TEST(Sideline, AsyncPublishesVersionsTransparently) {
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);
  AsyncRun R = runAsyncOnce(P, /*Seed=*/0x5eed51deull);
  EXPECT_EQ(R.Output, Native.Output);
  EXPECT_GE(R.Enqueued, 1u);
  EXPECT_GE(R.Published, 1u);
  // Every publication minted exactly one epoch.
  EXPECT_EQ(R.Epoch, R.Published);
}

TEST(Sideline, AsyncIsDeterministicForAFixedSeed) {
  // The host worker races wall-clock time, but publication happens on the
  // seeded virtual-completion schedule: two runs with the same seed must
  // be cycle-identical, not merely output-identical.
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  AsyncRun A = runAsyncOnce(P, /*Seed=*/7);
  AsyncRun B = runAsyncOnce(P, /*Seed=*/7);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Published, B.Published);
  EXPECT_EQ(A.StaleDrops, B.StaleDrops);
  // A different seed shifts completion times but never correctness.
  AsyncRun C = runAsyncOnce(P, /*Seed=*/1234);
  EXPECT_EQ(A.Output, C.Output);
}

TEST(Sideline, AsyncPublicationIsCheaperThanSyncReplacement) {
  // Publication swaps the link graph at a safe point (SidelinePublishCost)
  // instead of synchronously replacing the fragment (FragmentReplaceCost).
  // The flip side of asynchrony is latency: the old body runs until the
  // virtual completion comes due, so a workload with very few traces can
  // give back a sliver of the saving. Require an outright win on most
  // workloads and near-parity (0.1%) on every one.
  int Wins = 0;
  for (const char *Name : {"gcc", "perlbmk", "mgrid"}) {
    const Workload *W = findWorkload(Name);
    Program P = buildWorkload(*W, 0);
    uint64_t Sync;
    {
      Machine M;
      ASSERT_TRUE(loadProgram(M, P));
      StrengthReduceClient Inner;
      SidelineOptimizer Sideline(Inner);
      Runtime RT(M, RuntimeConfig::full(), &Sideline);
      Sync = runWithSideline(RT, Sideline).Cycles;
    }
    uint64_t Async;
    {
      Machine M;
      ASSERT_TRUE(loadProgram(M, P));
      StrengthReduceClient Inner;
      SidelineOptimizer Sideline(Inner, SidelineMode::Async, 7);
      RuntimeConfig Config = RuntimeConfig::full();
      Config.SidelinePump = &Sideline;
      Runtime RT(M, Config, &Sideline);
      Async = runWithSideline(RT, Sideline).Cycles;
    }
    Wins += Async < Sync;
    EXPECT_LE(double(Async), double(Sync) * 1.001) << Name;
  }
  EXPECT_GE(Wins, 2);
}

TEST(Sideline, AsyncDeleteWhileQueuedIsPurged) {
  // Regression: a cache flush lands while decoded jobs are in flight. The
  // deletion hook must cancel the jobs captured against the now-dead
  // versions; they surface as stale drops, never as publications into a
  // dead fragment.
  Program P = buildWorkload(*findWorkload("crafty"), 30);
  NativeRun Native = runNative(P);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  StrengthReduceClient Inner;
  SidelineOptimizer Sideline(Inner, SidelineMode::Async, 42);
  RuntimeConfig Config = RuntimeConfig::full();
  Config.SidelinePump = &Sideline;
  Runtime RT(M, Config, &Sideline);
  RunResult R;
  bool Flushed = false;
  for (;;) {
    R = RT.runFor(400);
    if (!R.QuantumExpired)
      break;
    if (!Flushed && Sideline.pendingCount() > 0) {
      RT.flushCaches(); // every queued job's target version dies here
      Flushed = true;
    }
  }
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  ASSERT_TRUE(Flushed);
  EXPECT_EQ(M.output(), Native.Output);
  EXPECT_GE(Sideline.staleDrops(), 1u);
  EXPECT_GE(RT.stats().get("sideline_stale_drops"), 1u);
}

TEST(Sideline, VersionQueryApi) {
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  AppPc Missing = 1; // no fragment will ever carry tag 1
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RlrClient Inner;
  SidelineOptimizer Sideline(Inner, SidelineMode::Async, 7);
  RuntimeConfig Config = RuntimeConfig::full();
  Config.SidelinePump = &Sideline;
  Runtime RT(M, Config, &Sideline);
  ASSERT_EQ(runWithSideline(RT, Sideline).Status, RunStatus::Exited);
  ASSERT_GE(Sideline.versionsPublished(), 1u);
  EXPECT_EQ(dr_fragment_version(&RT, Missing), -1);
  EXPECT_EQ(dr_publication_epoch(&RT), RT.publicationEpoch());
  // Single-threaded: nobody is suspended in the cache, so the whole
  // history is safe.
  EXPECT_EQ(dr_min_safe_epoch(&RT), dr_publication_epoch(&RT));
  // Some republished trace must report a bumped version number.
  int MaxVersion = 0;
  RT.forEachFragment([&](const Fragment &F) {
    EXPECT_EQ(dr_fragment_version(&RT, F.Tag), int(F.Version));
    MaxVersion = std::max(MaxVersion, int(F.Version));
  });
  EXPECT_GE(MaxVersion, 1);
}

TEST(Sideline, PersistRoundTripUnderSideline) {
  // PR 6 forbade cache images whenever any client was attached; the gate
  // is now persistSafe(), so a sideline-wrapped pure optimizer serializes
  // (only published versions live in the table) and warm-starts.
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);

  std::vector<uint8_t> Image;
  {
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    RlrClient Inner;
    SidelineOptimizer Sideline(Inner);
    Runtime RT(M, RuntimeConfig::full(), &Sideline);
    ASSERT_EQ(runWithSideline(RT, Sideline).Status, RunStatus::Exited);
    ASSERT_GE(Sideline.tracesOptimized(), 1u);
    ASSERT_TRUE(persist::CacheCodec::save(RT, Image));
  }
  {
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    RlrClient Inner;
    SidelineOptimizer Sideline(Inner);
    Runtime RT(M, RuntimeConfig::full(), &Sideline);
    ASSERT_EQ(persist::CacheCodec::load(RT, Image.data(), Image.size()),
              persist::LoadStatus::Ok);
    EXPECT_GE(RT.numFragments(), 1u);
    // The image carries each trace's OSR descriptors and NET block list.
    unsigned TracesWithBlocks = 0, TracesWithOsr = 0;
    RT.forEachFragment([&](const Fragment &F) {
      if (!F.isTrace())
        return;
      TracesWithBlocks += !F.TraceBlocks.empty();
      TracesWithOsr += !F.OsrPoints.empty();
    });
    EXPECT_GE(TracesWithBlocks, 1u);
    EXPECT_GE(TracesWithOsr, 1u);
    RunResult R = runWithSideline(RT, Sideline);
    ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
    EXPECT_EQ(M.output(), Native.Output);
  }
}

TEST(Sideline, QueueDrainsAndSurvivesFlushes) {
  Program P = buildWorkload(*findWorkload("crafty"), 30);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  StrengthReduceClient Inner;
  SidelineOptimizer Sideline(Inner);
  Runtime RT(M, RuntimeConfig::full(), &Sideline);
  RunResult R = runWithSideline(RT, Sideline, /*Quantum=*/500);
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  // Whatever remains queued at exit is simply unprocessed; nothing stale
  // blew up, and flush/replace notifications kept the queue consistent.
  RT.flushCaches();
  EXPECT_FALSE(Sideline.processOne(RT)); // all queued tags now vanished
}

} // namespace
