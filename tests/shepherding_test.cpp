//===- tests/shepherding_test.cpp - Program shepherding client tests ----------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "clients/Clients.h"
#include "core/Runtime.h"
#include "workloads/Workloads.h"

using namespace rio;
using namespace rio::test;

namespace {

/// A classic return-address-smash: the victim function overwrites its own
/// return address with an attacker-chosen location (the middle of main's
/// code, not a return site).
Program attackProgram() {
  return assembleOrDie(R"(
    main:
      mov esi, 0
      call victim
    after_call:
      mov ebx, 1          ; normal path exits 1
      mov eax, 1
      int 0x80
    gadget_entry:
      nop
      nop
    gadget:
      mov ebx, 666        ; "attacker" payload exits 666
      mov eax, 1
      int 0x80
    victim:
      mov eax, gadget
      mov [esp], eax      ; smash the return address
      ret
  )");
}

TEST(Shepherding, CleanProgramsHaveNoViolations) {
  for (const char *Name : {"crafty", "parser", "gap"}) {
    const Workload *W = findWorkload(Name);
    Program P = buildWorkload(*W, W->TestScale);
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    ShepherdingClient C;
    Runtime RT(M, RuntimeConfig::full(), &C);
    RunResult R = RT.run();
    ASSERT_EQ(R.Status, RunStatus::Exited) << Name << ": " << R.FaultReason;
    EXPECT_EQ(C.violations(), 0u) << Name;
    EXPECT_GT(C.transfersChecked(), 0u) << Name;
  }
}

TEST(Shepherding, DetectsReturnAddressSmash) {
  Program P = attackProgram();
  // Natively (and under a shepherding-free runtime) the attack "works":
  // the program exits with the attacker's code.
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);
  ASSERT_EQ(Native.ExitCode, 666);

  // Report-only mode: execution continues but the violation is recorded.
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ShepherdingClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(R.ExitCode, 666); // transparent: behaviour unchanged
  EXPECT_GE(C.violations(), 1u);
  EXPECT_EQ(C.lastViolationTarget(), P.symbol("gadget"));
}

TEST(Shepherding, EnforcementStopsTheAttack) {
  Program P = attackProgram();
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ShepherdingClient C;
  C.Enforce = true;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  // The program is killed before the payload runs.
  EXPECT_EQ(R.Status, RunStatus::Faulted);
  EXPECT_NE(R.FaultReason.find("security policy violation"),
            std::string::npos);
  EXPECT_EQ(M.output().find("666"), std::string::npos);
}

TEST(Shepherding, DetectsJumpIntoInstructionMiddle) {
  // An indirect jump into the byte-middle of vetted code (unintended
  // instructions) is flagged once that code has been built.
  Program P = assembleOrDie(R"(
    main:
      mov ecx, 3
    warm:
      call helper         ; builds helper's block (vetting it)
      dec ecx
      jnz warm
      mov eax, helper
      add eax, 1          ; middle of helper's first instruction
      push done           ; give the stray tail's ret somewhere to land
      jmp eax
    done:
      mov ebx, 0
      mov eax, 1
      int 0x80
    helper:
      mov edx, 0x90909090 ; bytes that decode innocuously from offset 1
      ret
  )");
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ShepherdingClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  (void)R; // the mid-instruction jump may or may not fault on its own
  EXPECT_GE(C.violations(), 1u);
}

TEST(Shepherding, WorksComposedWithOptimizations) {
  const Workload *W = findWorkload("crafty");
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ShepherdingClient Shep;
  CustomTracesClient Ct;
  RlrClient Rlr;
  MultiClient All({&Shep, &Ct, &Rlr});
  Runtime RT(M, RuntimeConfig::full(), &All);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  EXPECT_EQ(Shep.violations(), 0u);
}

} // namespace
