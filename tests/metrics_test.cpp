//===- tests/metrics_test.cpp - Production telemetry -------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the metrics registry and its exporters (support/Metrics.h):
///
///   - registry mechanics: sources, kinds, sorted sections, sequence
///     numbers, delta-since-last-snapshot;
///   - the non-perturbation gate: a metered run's simulated cycles are
///     bit-identical to an unmetered run's, snapshots taken mid-run
///     included (and the runFor slicing that takes them is itself
///     cycle-neutral against one uninterrupted run());
///   - per-tenant attribution: a 4-tenant fleet's sections sum exactly to
///     the fleet rollup for every metric, and both export formats are
///     byte-deterministic across identical runs;
///   - the flight recorder: the dump round-trips through a real JSON
///     parser and carries the last-N trace events, the snapshot, and the
///     top-K profile rows;
///   - the dr_metrics_* / dr_flight_dump API veneer.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "core/Runtime.h"
#include "core/ThreadedRunner.h"
#include "support/EventTrace.h"
#include "support/Metrics.h"
#include "support/OutStream.h"
#include "support/Profile.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace rio;
using namespace rio::test;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON parser — just enough to round-trip the exporters' output
// (objects, arrays, strings with the escapes appendJsonString emits, and
// unsigned integers; the exporters produce nothing else).
//===----------------------------------------------------------------------===//

struct Json {
  enum Kind { Null, Num, Str, Arr, Obj } K = Null;
  uint64_t N = 0;
  std::string S;
  std::vector<Json> A;
  std::map<std::string, Json> O;

  const Json &at(const std::string &Key) const {
    static const Json Missing;
    auto It = O.find(Key);
    return It == O.end() ? Missing : It->second;
  }
  bool has(const std::string &Key) const { return O.count(Key) != 0; }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : T(Text) {}

  bool parse(Json &Out) {
    bool Ok = value(Out);
    skipWs();
    return Ok && P == T.size();
  }

private:
  void skipWs() {
    while (P < T.size() && std::isspace(static_cast<unsigned char>(T[P])))
      ++P;
  }
  bool eat(char C) {
    skipWs();
    if (P >= T.size() || T[P] != C)
      return false;
    ++P;
    return true;
  }
  bool value(Json &Out) {
    skipWs();
    if (P >= T.size())
      return false;
    char C = T[P];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = Json::Str;
      return string(Out.S);
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Out.K = Json::Num;
      Out.N = 0;
      while (P < T.size() && std::isdigit(static_cast<unsigned char>(T[P])))
        Out.N = Out.N * 10 + uint64_t(T[P++] - '0');
      return true;
    }
    return false;
  }
  bool string(std::string &Out) {
    if (!eat('"'))
      return false;
    Out.clear();
    while (P < T.size() && T[P] != '"') {
      if (T[P] == '\\') {
        if (++P >= T.size())
          return false;
        switch (T[P]) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (P + 4 >= T.size())
            return false;
          unsigned V = 0;
          for (int I = 0; I != 4; ++I) {
            char H = T[++P];
            V = V * 16 + unsigned(std::isdigit((unsigned char)H) ? H - '0'
                                  : std::tolower(H) - 'a' + 10);
          }
          Out += char(V);
          break;
        }
        default: return false;
        }
        ++P;
      } else {
        Out += T[P++];
      }
    }
    return eat('"');
  }
  bool object(Json &Out) {
    if (!eat('{'))
      return false;
    Out.K = Json::Obj;
    skipWs();
    if (eat('}'))
      return true;
    do {
      std::string Key;
      if (!string(Key) || !eat(':'))
        return false;
      Json V;
      if (!value(V))
        return false;
      Out.O.emplace(std::move(Key), std::move(V));
    } while (eat(','));
    return eat('}');
  }
  bool array(Json &Out) {
    if (!eat('['))
      return false;
    Out.K = Json::Arr;
    skipWs();
    if (eat(']'))
      return true;
    do {
      Json V;
      if (!value(V))
        return false;
      Out.A.push_back(std::move(V));
    } while (eat(','));
    return eat(']');
  }

  const std::string &T;
  size_t P = 0;
};

Json parseOrDie(const std::string &Text) {
  Json J;
  EXPECT_TRUE(JsonParser(Text).parse(J)) << "unparseable JSON:\n" << Text;
  return J;
}

//===----------------------------------------------------------------------===//
// Shared fixtures
//===----------------------------------------------------------------------===//

Program dispatchProgram(int Iters) {
  return assembleOrDie(R"(
    .entry main
    table: .word h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h1 h2 h3 h4
    main:
      mov esi, 0
      mov eax, 12345
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    h4:
      add esi, 65537
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

std::string promOf(const MetricSnapshot &Snap) {
  StringOutStream OS;
  writePrometheus(OS, Snap);
  return OS.str();
}

std::string jsonOf(const MetricSnapshot &Snap) {
  StringOutStream OS;
  writeMetricsJson(OS, Snap);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Registry mechanics
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, SnapshotSortsNamesAndTracksKinds) {
  MetricsRegistry Reg;
  uint64_t Ticks = 7, Depth = 3;
  uint32_t Src = Reg.addSource("main");
  Reg.addCounter(Src, "zeta_ticks", [&] { return Ticks; });
  Reg.addGauge(Src, "alpha_depth", [&] { return Depth; });

  MetricSnapshot Snap = Reg.snapshot();
  ASSERT_EQ(Snap.Sections.size(), 1u);
  ASSERT_EQ(Snap.Sections[0].Values.size(), 2u);
  // Sorted by name within the section and the rollup.
  EXPECT_EQ(Snap.Sections[0].Values[0].Name, "alpha_depth");
  EXPECT_EQ(Snap.Sections[0].Values[1].Name, "zeta_ticks");
  EXPECT_EQ(Snap.Fleet[0].Name, "alpha_depth");
  EXPECT_EQ(Snap.Fleet[0].Kind, MetricKind::Gauge);
  EXPECT_EQ(Snap.Fleet[1].Kind, MetricKind::Counter);
  EXPECT_EQ(Snap.Sequence, 1u);
  EXPECT_EQ(Reg.snapshotsTaken(), 1u);
}

TEST(MetricsRegistry, DeltasTrackChangesBetweenSnapshots) {
  MetricsRegistry Reg;
  uint64_t Events = 10;
  Reg.addCounter(Reg.addSource("main"), "events", [&] { return Events; });

  MetricSnapshot First = Reg.snapshot();
  EXPECT_EQ(First.fleet("events")->Value, 10u);
  EXPECT_EQ(First.fleet("events")->Delta, 10u); // first delta == value

  Events = 25;
  MetricSnapshot Second = Reg.snapshot();
  EXPECT_EQ(Second.Sequence, 2u);
  EXPECT_EQ(Second.fleet("events")->Value, 25u);
  EXPECT_EQ(Second.fleet("events")->Delta, 15u);

  MetricSnapshot Third = Reg.snapshot();
  EXPECT_EQ(Third.fleet("events")->Delta, 0u);
}

TEST(MetricsRegistry, StatisticSetCountersArePickedUpLive) {
  StatisticSet Stats;
  Stats.counter("early") = 5;
  MetricsRegistry Reg;
  Reg.addCounters(Reg.addSource("main"), &Stats);

  // A counter interned *after* registration still appears: the set is
  // walked at snapshot time, not registration time.
  Stats.counter("late") = 7;
  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.fleet("early")->Value, 5u);
  EXPECT_EQ(Snap.fleet("late")->Value, 7u);
}

TEST(MetricsRegistry, RollupSumsSourcesExactly) {
  MetricsRegistry Reg;
  uint64_t A = 3, B = 39;
  Reg.addCounter(Reg.addSource("t0"), "work", [&] { return A; });
  Reg.addCounter(Reg.addSource("t1"), "work", [&] { return B; });

  MetricSnapshot Snap = Reg.snapshot();
  ASSERT_EQ(Snap.Sections.size(), 2u);
  EXPECT_EQ(Snap.Sections[0].Label, "t0"); // registration order
  EXPECT_EQ(Snap.Sections[1].Label, "t1");
  EXPECT_EQ(MetricSnapshot::find(Snap.Sections[0], "work")->Value, 3u);
  EXPECT_EQ(MetricSnapshot::find(Snap.Sections[1], "work")->Value, 39u);
  EXPECT_EQ(Snap.fleet("work")->Value, 42u);
}

TEST(MetricsRegistry, HistogramRegistrationIsIdempotentPerName) {
  Histogram H;
  H.add(4);
  H.add(100);
  MetricsRegistry Reg;
  Reg.addHistogram("sizes", &H);
  Reg.addHistogram("sizes", &H); // second runtime registering the shared one

  MetricSnapshot Snap = Reg.snapshot();
  ASSERT_EQ(Snap.Histograms.size(), 1u);
  EXPECT_EQ(Snap.Histograms[0].Count, 2u);
  uint64_t BucketTotal = 0;
  for (const auto &B : Snap.Histograms[0].Buckets)
    BucketTotal += B.N;
  EXPECT_EQ(BucketTotal, Snap.Histograms[0].Count);
}

//===----------------------------------------------------------------------===//
// The non-perturbation gate
//===----------------------------------------------------------------------===//

TEST(MetricsNeutrality, MeteredRunIsCycleIdenticalToUnmetered) {
  Program Prog = dispatchProgram(400);
  RuntimeConfig Config = RuntimeConfig::full();

  // Reference: no registry anywhere near the runtime.
  Machine M1;
  ASSERT_TRUE(loadProgram(M1, Prog));
  Runtime RT1(M1, Config);
  ASSERT_EQ(RT1.run().Status, RunStatus::Exited);

  // Metered: registry attached, snapshots taken mid-run at runFor slices.
  Machine M2;
  ASSERT_TRUE(loadProgram(M2, Prog));
  Runtime RT2(M2, Config);
  MetricsRegistry Reg;
  RT2.registerMetrics(Reg, "main");
  RunResult R;
  do {
    R = RT2.runFor(1000);
    Reg.snapshot();
  } while (R.QuantumExpired);
  ASSERT_EQ(R.Status, RunStatus::Exited);

  // Zero threshold, both directions: identical or the gate fails.
  EXPECT_EQ(M1.cycles(), M2.cycles());
  EXPECT_EQ(M1.instructionsExecuted(), M2.instructionsExecuted());
  EXPECT_EQ(M1.output(), M2.output());
  EXPECT_GE(Reg.snapshotsTaken(), 2u);
}

TEST(MetricsNeutrality, RunForSlicingItselfIsCycleNeutral) {
  // The periodic snapshot writer drives the run in runFor slices; that
  // slicing must not change simulated time even without any metrics.
  Program Prog = dispatchProgram(400);
  for (bool Ib : {false, true}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.IbInline = Ib;

    Machine M1;
    ASSERT_TRUE(loadProgram(M1, Prog));
    Runtime RT1(M1, Config);
    ASSERT_EQ(RT1.run().Status, RunStatus::Exited);

    Machine M2;
    ASSERT_TRUE(loadProgram(M2, Prog));
    Runtime RT2(M2, Config);
    RunResult R;
    do
      R = RT2.runFor(777);
    while (R.QuantumExpired);
    ASSERT_EQ(R.Status, RunStatus::Exited);

    EXPECT_EQ(M1.cycles(), M2.cycles()) << "ib-inline=" << Ib;
    EXPECT_EQ(M1.output(), M2.output()) << "ib-inline=" << Ib;
  }
}

//===----------------------------------------------------------------------===//
// Per-tenant attribution and export determinism
//===----------------------------------------------------------------------===//

/// Warms a template, forks a 4-tenant fleet, runs every tenant, registers
/// template + fleet in \p Reg, and returns the final snapshot. All state
/// is kept alive in the out-params so gauge closures stay valid.
MetricSnapshot runFleetAndSnapshot(const Program &Prog, MetricsRegistry &Reg,
                                   std::unique_ptr<Machine> &M,
                                   std::unique_ptr<Runtime> &Template,
                                   TenantFleet &Fleet) {
  RuntimeConfig Config = RuntimeConfig::full();
  M = std::make_unique<Machine>();
  EXPECT_TRUE(loadProgram(*M, Prog));
  Template = std::make_unique<Runtime>(*M, Config);
  EXPECT_EQ(Template->run().Status, RunStatus::Exited);
  M->resetForRun();
  Template->resetThreadForRun();
  std::string Err;
  EXPECT_TRUE(Template->freezeTemplate(&Err)) << Err;
  EXPECT_TRUE(Fleet.spawn(*Template, *M, 4, &Err)) << Err;

  Template->registerMetrics(Reg, "template");
  Fleet.registerMetrics(Reg);
  for (auto &T : Fleet)
    EXPECT_EQ(T.RT->run().Status, RunStatus::Exited);
  return Reg.snapshot();
}

TEST(MetricsFleet, TenantSectionsSumExactlyToFleetRollup) {
  Program Prog = dispatchProgram(300);
  MetricsRegistry Reg;
  std::unique_ptr<Machine> M;
  std::unique_ptr<Runtime> Template;
  TenantFleet Fleet;
  MetricSnapshot Snap = runFleetAndSnapshot(Prog, Reg, M, Template, Fleet);

  ASSERT_EQ(Snap.Sections.size(), 5u); // template + 4 tenants
  EXPECT_EQ(Snap.Sections[0].Label, "template");
  EXPECT_EQ(Snap.Sections[1].Label, "tenant0");
  EXPECT_EQ(Snap.Sections[4].Label, "tenant3");

  // The acceptance identity: for EVERY fleet metric, the per-section
  // values sum exactly to the rollup value.
  ASSERT_FALSE(Snap.Fleet.empty());
  for (const MetricValue &V : Snap.Fleet) {
    uint64_t Sum = 0;
    for (const MetricSection &Sec : Snap.Sections)
      if (const MetricValue *SV = MetricSnapshot::find(Sec, V.Name))
        Sum += SV->Value;
    EXPECT_EQ(Sum, V.Value) << "rollup mismatch for " << V.Name;
  }

  // Spot checks: every tenant counted itself, and ran real work.
  EXPECT_EQ(Snap.fleet("fork_tenant")->Value, 4u);
  for (size_t T = 1; T <= 4; ++T)
    EXPECT_GT(MetricSnapshot::find(Snap.Sections[T], "cycles")->Value, 0u);
}

TEST(MetricsFleet, ExportsAreByteDeterministicAcrossRuns) {
  Program Prog = dispatchProgram(300);
  std::string Proms[2], Jsons[2];
  for (int Run = 0; Run != 2; ++Run) {
    MetricsRegistry Reg;
    std::unique_ptr<Machine> M;
    std::unique_ptr<Runtime> Template;
    TenantFleet Fleet;
    MetricSnapshot Snap = runFleetAndSnapshot(Prog, Reg, M, Template, Fleet);
    Proms[Run] = promOf(Snap);
    Jsons[Run] = jsonOf(Snap);
  }
  EXPECT_EQ(Proms[0], Proms[1]);
  EXPECT_EQ(Jsons[0], Jsons[1]);
  EXPECT_FALSE(Proms[0].empty());
}

TEST(MetricsExport, PrometheusShapeIsValid) {
  MetricsRegistry Reg;
  uint64_t Work = 9;
  uint32_t T0 = Reg.addSource("tenant0");
  Reg.addCounter(T0, "work_total", [&] { return Work; });
  Histogram H;
  H.add(5);
  H.add(300);
  H.add(301);
  Reg.addHistogram("sizes", &H);

  std::string Text = promOf(Reg.snapshot());
  // One # TYPE line per family, fleet sample unlabeled, tenant labeled.
  EXPECT_NE(Text.find("# TYPE riodyn_work_total counter\n"), std::string::npos);
  EXPECT_NE(Text.find("\nriodyn_work_total 9\n"), std::string::npos);
  EXPECT_NE(Text.find("riodyn_work_total{tenant=\"tenant0\"} 9\n"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf equals _count, _sum present.
  EXPECT_NE(Text.find("# TYPE riodyn_sizes histogram\n"), std::string::npos);
  EXPECT_NE(Text.find("riodyn_sizes_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("riodyn_sizes_count 3\n"), std::string::npos);
  EXPECT_NE(Text.find("riodyn_sizes_sum 606\n"), std::string::npos);

  // Cumulative bucket counts never decrease.
  uint64_t Prev = 0;
  size_t Pos = 0;
  while ((Pos = Text.find("riodyn_sizes_bucket{le=\"", Pos)) !=
         std::string::npos) {
    size_t Space = Text.find(' ', Pos);
    uint64_t Cum = std::strtoull(Text.c_str() + Space + 1, nullptr, 10);
    EXPECT_GE(Cum, Prev);
    Prev = Cum;
    Pos = Space;
  }
}

TEST(MetricsExport, JsonRoundTripsThroughParser) {
  Program Prog = dispatchProgram(300);
  MetricsRegistry Reg;
  std::unique_ptr<Machine> M;
  std::unique_ptr<Runtime> Template;
  TenantFleet Fleet;
  MetricSnapshot Snap = runFleetAndSnapshot(Prog, Reg, M, Template, Fleet);

  Json Doc = parseOrDie(jsonOf(Snap));
  EXPECT_EQ(Doc.at("sequence").N, Snap.Sequence);
  EXPECT_EQ(Doc.at("cycles").N, Snap.Cycles);
  ASSERT_EQ(Doc.at("tenants").A.size(), Snap.Sections.size());
  EXPECT_EQ(Doc.at("tenants").A[0].at("label").S, "template");
  // The parsed document preserves the rollup identity too.
  for (const auto &[Name, V] : Doc.at("fleet").O) {
    uint64_t Sum = 0;
    for (const Json &Tenant : Doc.at("tenants").A) {
      const Json &TV = Tenant.at("metrics").at(Name);
      Sum += TV.K == Json::Num ? TV.N : 0;
    }
    EXPECT_EQ(Sum, V.at("value").N) << "parsed rollup mismatch for " << Name;
  }
}

//===----------------------------------------------------------------------===//
// The flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, DumpRoundTripsWithEventsAndProfile) {
  Program Prog = dispatchProgram(5000);
  RuntimeConfig Config = RuntimeConfig::full();
  EventTrace Trace(/*Capacity=*/16); // tiny ring: forces wrap + drops
  SampleProfile Prof(500);
  Config.Trace = &Trace;
  Config.Profiler = &Prof;

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, Config);
  MetricsRegistry Reg;
  RT.registerMetrics(Reg, "main");

  // Trigger mid-run, like a guard-rail trip would.
  RunResult R = RT.runFor(20000);
  ASSERT_TRUE(R.QuantumExpired);
  StringOutStream OS;
  constexpr size_t LastN = 8, TopK = 5;
  writeFlightRecord(OS, "guard_rail_trip", Reg.snapshot(), &Trace, &Prof,
                    LastN, TopK);

  Json Doc = parseOrDie(OS.str());
  EXPECT_EQ(Doc.at("flight_record").N, 1u);
  EXPECT_EQ(Doc.at("reason").S, "guard_rail_trip");

  // A complete, valid snapshot is embedded.
  const Json &Snap = Doc.at("snapshot");
  EXPECT_EQ(Snap.at("sequence").N, 1u);
  EXPECT_GT(Snap.at("cycles").N, 0u);
  EXPECT_TRUE(Snap.at("fleet").has("dispatches"));

  // Events: exactly the last-N retained ring entries, in order, with the
  // dropped count carried alongside.
  const Json &Events = Doc.at("events");
  EXPECT_EQ(Events.at("total_recorded").N, Trace.totalRecorded());
  EXPECT_EQ(Events.at("dropped").N, Trace.droppedEvents());
  EXPECT_GT(Trace.droppedEvents(), 0u); // the ring did wrap
  ASSERT_EQ(Events.at("last").A.size(), LastN);
  size_t First = Trace.size() - LastN;
  for (size_t I = 0; I != LastN; ++I) {
    const TraceEvent &E = Trace.event(First + I);
    const Json &Row = Events.at("last").A[I];
    EXPECT_EQ(Row.at("cycles").N, E.Cycles);
    EXPECT_EQ(Row.at("tag").N, E.Tag);
    EXPECT_EQ(Row.at("kind").S, traceEventKindName(E.kind()));
  }

  // Profile: top-K rows of the deterministic hottest() order.
  const Json &Profile = Doc.at("profile");
  EXPECT_EQ(Profile.at("total_samples").N, Prof.totalSamples());
  std::vector<SampleProfile::Entry> Hot = Prof.hottest();
  ASSERT_GE(Hot.size(), 1u);
  size_t Expect = std::min(Hot.size(), TopK);
  ASSERT_EQ(Profile.at("top").A.size(), Expect);
  for (size_t I = 0; I != Expect; ++I) {
    EXPECT_EQ(Profile.at("top").A[I].at("tag").N, Hot[I].Tag);
    EXPECT_EQ(Profile.at("top").A[I].at("samples").N, Hot[I].Samples);
  }
}

TEST(FlightRecorder, NullSinksProduceEmptySections) {
  MetricsRegistry Reg;
  uint64_t V = 1;
  Reg.addCounter(Reg.addSource("main"), "v", [&] { return V; });
  StringOutStream OS;
  writeFlightRecord(OS, "no sinks", Reg.snapshot(), nullptr, nullptr);
  Json Doc = parseOrDie(OS.str());
  EXPECT_EQ(Doc.at("events").at("last").A.size(), 0u);
  EXPECT_EQ(Doc.at("events").at("total_recorded").N, 0u);
  EXPECT_EQ(Doc.at("profile").at("top").A.size(), 0u);
}

//===----------------------------------------------------------------------===//
// dr_ API veneer
//===----------------------------------------------------------------------===//

class TempFile {
public:
  explicit TempFile(const char *Suffix) {
    Path = ::testing::TempDir() + "riodyn_metrics_" + Suffix;
  }
  ~TempFile() { std::remove(Path.c_str()); }
  std::string read() const {
    std::string Out;
    std::FILE *F = std::fopen(Path.c_str(), "rb");
    if (!F)
      return Out;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Out.append(Buf, N);
    std::fclose(F);
    return Out;
  }
  std::string Path;
};

TEST(DrMetrics, SnapshotExportAndFlightDump) {
  Program Prog = dispatchProgram(300);
  RuntimeConfig Config = RuntimeConfig::full();
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, Config);
  ASSERT_EQ(RT.run().Status, RunStatus::Exited);

  // The lazy self-registry labels the runtime "main"; deltas accumulate
  // across calls because the registry persists with the runtime.
  MetricSnapshot S1 = dr_metrics_snapshot(&RT);
  EXPECT_EQ(S1.Sequence, 1u);
  ASSERT_EQ(S1.Sections.size(), 1u);
  EXPECT_EQ(S1.Sections[0].Label, "main");
  EXPECT_GT(S1.fleet("cycles")->Value, 0u);
  MetricSnapshot S2 = dr_metrics_snapshot(&RT);
  EXPECT_EQ(S2.Sequence, 2u);
  EXPECT_EQ(S2.fleet("dispatches")->Delta, 0u); // nothing ran in between

  TempFile Prom("api.prom"), JsonFile("api.json"), Flight("api.flight");
  ASSERT_TRUE(dr_metrics_export(&RT, Prom.Path.c_str(), "prom"));
  ASSERT_TRUE(dr_metrics_export(&RT, JsonFile.Path.c_str(), "json"));
  EXPECT_FALSE(dr_metrics_export(&RT, Prom.Path.c_str(), "xml"));
  EXPECT_FALSE(
      dr_metrics_export(&RT, "/nonexistent-dir/x.prom", "prom"));

  EXPECT_NE(Prom.read().find("# TYPE riodyn_dispatches counter"),
            std::string::npos);
  Json Exported = parseOrDie(JsonFile.read());
  EXPECT_TRUE(Exported.at("fleet").has("dispatches"));

  ASSERT_TRUE(dr_flight_dump(&RT, Flight.Path.c_str(), "operator request"));
  Json Dump = parseOrDie(Flight.read());
  EXPECT_EQ(Dump.at("reason").S, "operator request");
  EXPECT_EQ(Dump.at("flight_record").N, 1u);
}

} // namespace
