//===- tests/clients_test.cpp - Sample optimization client tests ---------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "clients/Clients.h"
#include "core/Runtime.h"
#include "workloads/Workloads.h"

using namespace rio;
using namespace rio::test;

namespace {

struct ClientRun {
  RunResult Result;
  std::string Output;
  StatisticSet Stats;
};

ClientRun runWith(const Program &P, Client *C,
                  RuntimeConfig Config = RuntimeConfig::full(),
                  CostModel Cost = CostModel()) {
  MachineConfig MC;
  MC.Cost = Cost;
  Machine M(MC);
  EXPECT_TRUE(loadProgram(M, P));
  Runtime RT(M, Config, C);
  ClientRun R;
  R.Result = RT.run();
  R.Output = M.output();
  R.Stats = RT.stats();
  return R;
}

void expectSameBehaviour(const Program &P, Client *C,
                         RuntimeConfig Config = RuntimeConfig::full()) {
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited) << Native.FaultReason;
  ClientRun R = runWith(P, C, Config);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited) << R.Result.FaultReason;
  EXPECT_EQ(R.Result.ExitCode, Native.ExitCode);
  EXPECT_EQ(R.Output, Native.Output);
}

//===----------------------------------------------------------------------===//
// StrengthReduce (inc2add, Figure 3)
//===----------------------------------------------------------------------===//

Program incLoop(int Iters) {
  return assembleOrDie(R"(
    main:
      mov ecx, 0
      mov eax, 0
    loop:
      inc eax
      inc ecx
      cmp ecx, )" + std::to_string(Iters) + R"(
      jnz loop
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
}

TEST(StrengthReduce, ConvertsAndSpeedsUpOnP4) {
  Program P = incLoop(20000);
  StrengthReduceClient C;
  NativeRun Native = runNative(P);
  ClientRun R = runWith(P, &C);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited);
  EXPECT_EQ(R.Result.ExitCode, Native.ExitCode);
  EXPECT_TRUE(C.enabled());
  EXPECT_GE(C.numConverted(), 2u); // both incs convert (cmp rewrites CF)
  ClientRun Base = runWith(P, nullptr);
  EXPECT_LT(R.Result.Cycles, Base.Result.Cycles);
}

TEST(StrengthReduce, DisabledOnP3) {
  Program P = incLoop(1000);
  StrengthReduceClient C;
  ClientRun R = runWith(P, &C, RuntimeConfig::full(),
                        CostModel::pentiumIII());
  ASSERT_EQ(R.Result.Status, RunStatus::Exited);
  EXPECT_FALSE(C.enabled());
  EXPECT_EQ(C.numConverted(), 0u);
}

TEST(StrengthReduce, RefusesWhenCarryIsLive) {
  // The inc's stale CF is read by an adc before anything rewrites it:
  // conversion would change behaviour, so the client must refuse — and
  // the program's output must stay native.
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 20000
    loop:
      mov eax, 0xFFFFFFFF
      add eax, 1          ; CF := 1
      inc eax             ; must NOT become add (CF would become 0)
      mov ebx, 0
      adc ebx, 0          ; reads CF: ebx = 1 iff CF survived
      add esi, ebx
      dec ecx
      jnz loop
      and esi, 0xFFFFFF
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  StrengthReduceClient C;
  expectSameBehaviour(P, &C);
  EXPECT_GE(C.numExamined(), 1u);
}

//===----------------------------------------------------------------------===//
// Redundant load removal
//===----------------------------------------------------------------------===//

TEST(Rlr, RemovesRedundantLoadsAndPreservesBehaviour) {
  Program P = assembleOrDie(R"(
    cell: .word 7
    main:
      mov esi, 0
      mov ecx, 30000
    loop:
      mov eax, [cell]
      mov edx, [cell]     ; redundant: forwarded to reg copy
      mov ebx, [cell]     ; redundant
      add eax, edx
      add eax, ebx
      add esi, eax
      and esi, 0xFFFFFF
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  RlrClient C;
  NativeRun Native = runNative(P);
  ClientRun R = runWith(P, &C);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited) << R.Result.FaultReason;
  EXPECT_EQ(R.Output, Native.Output);
  EXPECT_GE(C.loadsForwarded() + C.loadsRemoved(), 2u);
  ClientRun Base = runWith(P, nullptr);
  EXPECT_LT(R.Result.Cycles, Base.Result.Cycles);
}

TEST(Rlr, RespectsInterveningStores) {
  // A store through an unrelated pointer may alias: the reload after it
  // must NOT be removed. ebx points at the same cell.
  Program P = assembleOrDie(R"(
    cell: .word 5
    main:
      mov esi, 0
      mov ecx, 20000
      mov ebx, cell
    loop:
      mov eax, [cell]     ; load 5 (say)
      mov edx, eax
      inc edx
      mov [ebx], edx      ; aliasing store: cell = 6
      mov eax, [cell]     ; reload MUST see 6
      add esi, eax
      and esi, 0xFFFFFF
      mov edx, [cell]
      dec edx
      mov [cell], edx     ; restore
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  RlrClient C;
  expectSameBehaviour(P, &C);
}

TEST(Rlr, HandlesFpLoads) {
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, W->TestScale);
  RlrClient C;
  NativeRun Native = runNative(P);
  ClientRun R = runWith(P, &C);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited);
  EXPECT_EQ(R.Output, Native.Output);
  EXPECT_GE(C.loadsForwarded() + C.loadsRemoved(), 3u);
}

//===----------------------------------------------------------------------===//
// Adaptive indirect branch dispatch
//===----------------------------------------------------------------------===//

TEST(IBDispatch, RewritesTracesAndPreservesBehaviour) {
  const Workload *W = findWorkload("gap");
  Program P = buildWorkload(*W, 20000);
  IBDispatchClient C;
  NativeRun Native = runNative(P);
  ClientRun R = runWith(P, &C);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited) << R.Result.FaultReason;
  EXPECT_EQ(R.Output, Native.Output);
  EXPECT_GE(C.sitesInstrumented(), 1u);
  EXPECT_GE(C.tracesRewritten(), 1u);
  EXPECT_GE(R.Stats.get("fragments_replaced"), 1u);
}

TEST(IBDispatch, ImprovesMegamorphicDispatch) {
  const Workload *W = findWorkload("gap");
  Program P = buildWorkload(*W, 60000);
  IBDispatchClient C;
  ClientRun With = runWith(P, &C);
  ClientRun Base = runWith(P, nullptr);
  ASSERT_EQ(With.Result.Status, RunStatus::Exited);
  EXPECT_LT(With.Result.Cycles, Base.Result.Cycles);
}

TEST(IBDispatch, ProfilingCallSurvivesRewrite) {
  // After the rewrite the profiling call must still be reachable on the
  // residual miss path (the paper keeps it; targets are never removed).
  const Workload *W = findWorkload("parser");
  Program P = buildWorkload(*W, 1500);
  IBDispatchClient C;
  ClientRun R = runWith(P, &C);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited);
  if (C.tracesRewritten() > 0) {
    // Each rewritten site collected its full sample budget first; the
    // profiling call remains reachable afterwards (never removed).
    EXPECT_GE(R.Stats.get("clean_calls"),
              uint64_t(32 * C.tracesRewritten()));
  }
}

//===----------------------------------------------------------------------===//
// Custom traces
//===----------------------------------------------------------------------===//

TEST(CustomTraces, MarksCallSiteHeadsAndSpeedsUpCalls) {
  const Workload *W = findWorkload("crafty");
  Program P = buildWorkload(*W, 100);
  CustomTracesClient C;
  NativeRun Native = runNative(P);
  ClientRun R = runWith(P, &C);
  ASSERT_EQ(R.Result.Status, RunStatus::Exited) << R.Result.FaultReason;
  EXPECT_EQ(R.Output, Native.Output);
  EXPECT_GE(C.headsMarked(), 2u);
  ClientRun Base = runWith(P, nullptr);
  EXPECT_LT(R.Result.Cycles, Base.Result.Cycles);
  EXPECT_GE(R.Stats.get("indirect_branches_inlined"),
            Base.Stats.get("indirect_branches_inlined"));
}

//===----------------------------------------------------------------------===//
// Inscount
//===----------------------------------------------------------------------===//

TEST(Inscount, CountsExactlyWithoutTraces) {
  Program P = incLoop(777);
  NativeRun Native = runNative(P);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  InscountClient C;
  Runtime RT(M, RuntimeConfig::linkIndirect(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(C.totalInstructions(), Native.Instructions);
}

TEST(Inscount, ApproximatelyCountsUnderTraces) {
  Program P = incLoop(5000);
  NativeRun Native = runNative(P);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  InscountClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  ASSERT_EQ(RT.run().Status, RunStatus::Exited);
  double Ratio =
      double(C.totalInstructions()) / double(Native.Instructions);
  EXPECT_GT(Ratio, 0.9);
  EXPECT_LT(Ratio, 1.1);
}

//===----------------------------------------------------------------------===//
// Composition
//===----------------------------------------------------------------------===//

TEST(MultiClientSuite, AllFourPreserveEveryWorkload) {
  for (const Workload &W : allWorkloads()) {
    Program P = buildWorkload(W, W.TestScale);
    CustomTracesClient C1;
    RlrClient C2;
    StrengthReduceClient C3;
    IBDispatchClient C4;
    MultiClient All({&C1, &C2, &C3, &C4});
    NativeRun Native = runNative(P);
    ClientRun R = runWith(P, &All);
    ASSERT_EQ(R.Result.Status, RunStatus::Exited)
        << W.Name << ": " << R.Result.FaultReason;
    EXPECT_EQ(R.Output, Native.Output) << W.Name;
    EXPECT_EQ(R.Result.ExitCode, Native.ExitCode) << W.Name;
  }
}

} // namespace
