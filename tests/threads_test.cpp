//===- tests/threads_test.cpp - Multi-threaded application tests ---------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded applications under the runtime: thread-private code
/// caches (paper Section 2), per-thread client hooks (Table 3), and the
/// transparency invariant extended across threads.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "clients/Clients.h"
#include "core/ThreadedRunner.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace rio;
using namespace rio::test;

namespace {

/// A race-free multi-threaded program: main spawns N workers, each sums a
/// disjoint slice of an array into its own result slot and raises a done
/// flag; main spins until all flags are up, then prints the combined sum.
/// Deterministic result under ANY fair schedule.
Program workerProgram(int Workers, int Elems) {
  std::string S = R"(
    data:    .space 4096
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
  )";
  S += "main:\n";
  // Fill data with i & 255.
  S += R"(
      mov ecx, 0
    init:
      mov eax, ecx
      and eax, 255
      mov edx, ecx
      shl edx, 2
      mov [data+edx], eax
      inc ecx
      cmp ecx, 1024
      jnz init
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  // Spin-join on the flags.
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  // Combine and print.
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";

  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    int Lo = W * Elems;
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov ecx, " + std::to_string(Lo) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  mov edx, ecx\n  shl edx, 2\n";
    S += "  add esi, [data+edx]\n";
    S += "  inc ecx\n";
    S += "  cmp ecx, " + std::to_string(Lo + Elems) + "\n";
    S += "  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n";
    S += "  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  return assembleOrDie(S);
}

/// Expected sum for workerProgram(Workers, Elems).
int expectedSum(int Workers, int Elems) {
  int Sum = 0;
  for (int I = 0; I != Workers * Elems; ++I)
    Sum += I & 255;
  return Sum;
}

TEST(Threads, NativeThreadedExecutionWorks) {
  Program P = workerProgram(3, 200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RunResult R = runThreadedNative(M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), std::to_string(expectedSum(3, 200)) + "\n");
  EXPECT_EQ(M.numThreads(), 4u);
}

TEST(Threads, RuntimeMatchesNativeOutput) {
  Program P = workerProgram(3, 200);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ThreadedRunner Runner(M, RuntimeConfig::full());
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, NR.ExitCode);
  EXPECT_EQ(M.output(), Native.output());
}

TEST(Threads, EveryConfigurationIsTransparent) {
  Program P = workerProgram(2, 150);
  std::string Expected = std::to_string(expectedSum(2, 150)) + "\n";
  const RuntimeConfig Configs[] = {
      RuntimeConfig::bbCacheOnly(), RuntimeConfig::linkDirect(),
      RuntimeConfig::linkIndirect(), RuntimeConfig::full()};
  for (const RuntimeConfig &Config : Configs) {
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    ThreadedRunner Runner(M, Config);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
    EXPECT_EQ(M.output(), Expected);
  }
}

TEST(Threads, CachesAreThreadPrivate) {
  // All three workers execute the *same* shared summing pattern... but
  // each worker body is distinct code here, so instead verify the sharper
  // claim: fragments live in disjoint per-thread cache regions and each
  // thread built its own.
  Program P = workerProgram(3, 200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ThreadedRunner Runner(M, RuntimeConfig::full());
  ASSERT_EQ(Runner.run().Status, RunStatus::Exited);
  ASSERT_EQ(Runner.threadsSeen(), 4u);

  uint32_t Slice = M.config().RuntimeRegionSize / Runner.maxThreads();
  for (unsigned Tid = 0; Tid != 4; ++Tid) {
    Runtime *RT = Runner.runtimeFor(Tid);
    ASSERT_NE(RT, nullptr);
    EXPECT_GE(RT->stats().get("basic_blocks_built"), 1u) << "thread " << Tid;
    uint32_t Lo = M.runtimeBase() + Tid * Slice;
    RT->forEachFragment([&](const Fragment &Frag) {
      EXPECT_GE(Frag.CacheAddr, Lo);
      EXPECT_LT(Frag.CacheAddr, Lo + Slice);
    });
  }
}

TEST(Threads, ClientThreadHooksFire) {
  class HookCounter : public Client {
  public:
    int Inits = 0, Exits = 0, ThreadInits = 0, ThreadExits = 0;
    void onInit(Runtime &) override { ++Inits; }
    void onExit(Runtime &) override { ++Exits; }
    void onThreadInit(Runtime &) override { ++ThreadInits; }
    void onThreadExit(Runtime &) override { ++ThreadExits; }
  };
  Program P = workerProgram(3, 100);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  HookCounter C;
  ThreadedRunner Runner(M, RuntimeConfig::full(), &C);
  ASSERT_EQ(Runner.run().Status, RunStatus::Exited);
  EXPECT_EQ(C.Inits, 1);
  EXPECT_EQ(C.Exits, 1);
  EXPECT_EQ(C.ThreadInits, 4);
  EXPECT_EQ(C.ThreadExits, 4);
}

TEST(Threads, OptimizationClientsWorkAcrossThreads) {
  Program P = workerProgram(3, 300);
  std::string Expected = std::to_string(expectedSum(3, 300)) + "\n";
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  CustomTracesClient C1;
  RlrClient C2;
  StrengthReduceClient C3;
  IBDispatchClient C4;
  MultiClient All({&C1, &C2, &C3, &C4});
  ThreadedRunner Runner(M, RuntimeConfig::full(), &All);
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Expected);
}

TEST(Threads, DeterministicScheduling) {
  Program P = workerProgram(2, 128);
  auto Once = [&] {
    Machine M;
    loadProgram(M, P);
    ThreadedRunner Runner(M, RuntimeConfig::full());
    RunResult R = Runner.run();
    return std::pair(R.Cycles, M.output());
  };
  auto A = Once();
  auto B = Once();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}

/// Like workerProgram, but every worker runs the *same* code path: a loop
/// that calls one shared function. Under thread-private caches each thread
/// duplicates shared_fn's fragments; under a shared cache they are built
/// once. This is the program shape behind the paper's Section 2 trade-off.
Program sharedFnProgram(int Workers, int Iters) {
  std::string S = R"(
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
    main:
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  and esi, 0xFFFFFF\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";
  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov ecx, " + std::to_string(Iters) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  mov eax, ecx\n";
    S += "  call shared_fn\n";
    S += "  add esi, eax\n  and esi, 0xFFFFFF\n";
    S += "  dec ecx\n  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  S += R"(
    shared_fn:
      imul eax, eax, 17
      and eax, 1023
      add eax, 3
      ret
  )";
  return assembleOrDie(S);
}

/// Sums a named counter across every distinct runtime the runner holds
/// (one in shared mode, one per thread in private mode).
uint64_t sumStat(ThreadedRunner &Runner, const char *Name) {
  uint64_t Sum = 0;
  std::set<Runtime *> Seen;
  for (unsigned Tid = 0; Tid != Runner.threadsSeen(); ++Tid)
    if (Runtime *RT = Runner.runtimeFor(Tid))
      if (Seen.insert(RT).second)
        Sum += RT->stats().get(Name);
  return Sum;
}

//===----------------------------------------------------------------------===//
// Shared-cache mode (paper Section 2's other side of the trade-off)
//===----------------------------------------------------------------------===//

TEST(Threads, SharedCacheMatchesNativeOutput) {
  for (Program P : {workerProgram(3, 200), sharedFnProgram(3, 500)}) {
    Machine Native;
    ASSERT_TRUE(loadProgram(Native, P));
    RunResult NR = runThreadedNative(Native);
    ASSERT_EQ(NR.Status, RunStatus::Exited) << NR.FaultReason;

    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = CacheSharing::Shared;
    ThreadedRunner Runner(M, Config);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
    EXPECT_EQ(R.ExitCode, NR.ExitCode);
    EXPECT_EQ(M.output(), Native.output());
  }
}

TEST(Threads, SharedCacheEveryConfigurationIsTransparent) {
  Program P = workerProgram(2, 150);
  std::string Expected = std::to_string(expectedSum(2, 150)) + "\n";
  const RuntimeConfig Configs[] = {
      RuntimeConfig::bbCacheOnly(), RuntimeConfig::linkDirect(),
      RuntimeConfig::linkIndirect(), RuntimeConfig::full()};
  for (RuntimeConfig Config : Configs) {
    Config.Sharing = CacheSharing::Shared;
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    ThreadedRunner Runner(M, Config);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
    EXPECT_EQ(M.output(), Expected);
  }
}

TEST(Threads, SharedCacheIsDeterministic) {
  Program P = workerProgram(2, 128);
  auto Once = [&] {
    Machine M;
    loadProgram(M, P);
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = CacheSharing::Shared;
    ThreadedRunner Runner(M, Config);
    RunResult R = Runner.run();
    return std::pair(R.Cycles, M.output());
  };
  auto A = Once();
  auto B = Once();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}

TEST(Threads, SharedCacheUsesOneRuntime) {
  Program P = sharedFnProgram(3, 500);

  // Private: four runtimes, shared_fn duplicated in several of them.
  Machine MP;
  ASSERT_TRUE(loadProgram(MP, P));
  ThreadedRunner Private(MP, RuntimeConfig::full());
  ASSERT_EQ(Private.run().Status, RunStatus::Exited);
  AppPc FnTag = P.symbol("shared_fn");
  unsigned PrivateCopies = 0;
  uint64_t PrivateBlocks = 0;
  for (unsigned Tid = 0; Tid != Private.threadsSeen(); ++Tid) {
    Runtime *RT = Private.runtimeFor(Tid);
    ASSERT_NE(RT, nullptr);
    EXPECT_FALSE(dr_using_shared_cache(RT));
    if (RT->lookupFragment(FnTag))
      ++PrivateCopies;
    PrivateBlocks += RT->stats().get("basic_blocks_built");
  }
  EXPECT_GE(PrivateCopies, 3u) << "every worker should duplicate shared_fn";

  // Shared: one runtime serves every thread; shared_fn is built once, so
  // strictly fewer basic blocks are built in total.
  Machine MS;
  ASSERT_TRUE(loadProgram(MS, P));
  RuntimeConfig Config = RuntimeConfig::full();
  Config.Sharing = CacheSharing::Shared;
  ThreadedRunner Shared(MS, Config);
  ASSERT_EQ(Shared.run().Status, RunStatus::Exited);
  ASSERT_EQ(Shared.threadsSeen(), 4u);
  Runtime *RT0 = Shared.runtimeFor(0);
  ASSERT_NE(RT0, nullptr);
  EXPECT_TRUE(dr_using_shared_cache(RT0));
  for (unsigned Tid = 1; Tid != Shared.threadsSeen(); ++Tid)
    EXPECT_EQ(Shared.runtimeFor(Tid), RT0) << "thread " << Tid;
  EXPECT_EQ(RT0->numThreadContexts(), 4u);
  EXPECT_LT(RT0->stats().get("basic_blocks_built"), PrivateBlocks);
  EXPECT_GE(RT0->stats().get("thread_context_swaps"), 3u);
}

TEST(Threads, ConfigurableQuantumAndMaxThreads) {
  // Satellite: MaxThreads / quantum come from RuntimeConfig. A lower
  // thread limit widens the private slices; a smaller quantum forces more
  // shared-mode context swaps (each charged ThreadContextSwapCost).
  Program P = workerProgram(3, 200);
  std::string Expected = std::to_string(expectedSum(3, 200)) + "\n";

  RuntimeConfig Wide = RuntimeConfig::full();
  Wide.MaxThreads = 4;
  Machine MW;
  ASSERT_TRUE(loadProgram(MW, P));
  ThreadedRunner WideRunner(MW, Wide);
  EXPECT_EQ(WideRunner.maxThreads(), 4u);
  ASSERT_EQ(WideRunner.run().Status, RunStatus::Exited);
  EXPECT_EQ(MW.output(), Expected);
  uint32_t Slice = MW.config().RuntimeRegionSize / 4;
  for (unsigned Tid = 0; Tid != WideRunner.threadsSeen(); ++Tid) {
    uint32_t Lo = MW.runtimeBase() + Tid * Slice;
    WideRunner.runtimeFor(Tid)->forEachFragment([&](const Fragment &Frag) {
      EXPECT_GE(Frag.CacheAddr, Lo);
      EXPECT_LT(Frag.CacheAddr, Lo + Slice);
    });
  }

  uint64_t Swaps[2];
  int Idx = 0;
  for (uint64_t Quantum : {5000u, 500u}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = CacheSharing::Shared;
    Config.ThreadQuantum = Quantum;
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    ThreadedRunner Runner(M, Config);
    ASSERT_EQ(Runner.run().Status, RunStatus::Exited);
    EXPECT_EQ(M.output(), Expected);
    Swaps[Idx++] = Runner.runtimeFor(0)->stats().get("thread_context_swaps");
  }
  EXPECT_GT(Swaps[1], Swaps[0])
      << "a 10x smaller quantum must swap contexts more often";
}

TEST(Threads, ThreadIdQueryTracksActiveThread) {
  // dr_get_thread_id from a clean call must report the thread actually
  // executing, in both sharing modes (in shared mode that is whichever
  // context is currently banked in).
  class TidRecorder : public Client {
  public:
    AppPc HookTag = 0;
    std::set<unsigned> SeenTids;
    void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &Block) override {
      if (Tag != HookTag)
        return;
      uint32_t Id = RT.registerCleanCall([this](CleanCallContext &Ctx) {
        SeenTids.insert(dr_get_thread_id(&Ctx.RT));
      });
      Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                       {Operand::imm(int64_t(Id), 4)});
      ASSERT_NE(Call, nullptr);
      Block.prepend(Call);
    }
  };
  Program P = sharedFnProgram(3, 50);
  for (CacheSharing Sharing :
       {CacheSharing::ThreadPrivate, CacheSharing::Shared}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = Sharing;
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    TidRecorder C;
    C.HookTag = P.symbol("shared_fn");
    ThreadedRunner Runner(M, Config, &C);
    ASSERT_EQ(Runner.run().Status, RunStatus::Exited);
    EXPECT_EQ(C.SeenTids, (std::set<unsigned>{1, 2, 3}))
        << "mode " << int(Sharing);
  }
}

//===----------------------------------------------------------------------===//
// Deletion safety under suspension (satellite: guard-pc reclamation)
//===----------------------------------------------------------------------===//

/// From worker 0's loop body, flushes the whole worker code region a few
/// times. Under quantum scheduling the *other* workers are suspended
/// mid-fragment when the flush lands, and they exit (thread_exit) while
/// the flushed slots are still pending — reclamation must defer until
/// every suspended thread's guard pc has left the doomed bytes.
class CrossThreadFlushClient : public Client {
public:
  AppPc HookTag = 0;
  AppPc FlushStart = 0;
  int Flushes = 0;

  void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &Block) override {
    if (Tag != HookTag)
      return;
    uint32_t Id = RT.registerCleanCall([this](CleanCallContext &Ctx) {
      if (Flushes >= 3)
        return;
      ++Flushes;
      dr_flush_region(&Ctx.RT, FlushStart, 0x10000);
    });
    Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                     {Operand::imm(int64_t(Id), 4)});
    ASSERT_NE(Call, nullptr);
    Block.prepend(Call);
  }
};

TEST(Threads, FlushWhileThreadsSuspendedMidFragment) {
  Program P = sharedFnProgram(3, 400);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  for (CacheSharing Sharing :
       {CacheSharing::ThreadPrivate, CacheSharing::Shared}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = Sharing;
    Config.ThreadQuantum = 700; // frequent mid-fragment suspensions
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    CrossThreadFlushClient C;
    C.HookTag = P.symbol("wloop0");
    C.FlushStart = P.symbol("worker0");
    ThreadedRunner Runner(M, Config, &C);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited)
        << R.FaultReason << " mode " << int(Sharing);
    EXPECT_EQ(M.output(), Native.output()) << "mode " << int(Sharing);
    EXPECT_EQ(C.Flushes, 3) << "mode " << int(Sharing);
    EXPECT_GE(sumStat(Runner, "region_flushes"), 3u);
    EXPECT_GE(sumStat(Runner, "region_flushed_fragments"), 3u);
    EXPECT_GE(sumStat(Runner, "fragments_deleted"), 3u);
  }
}

TEST(Threads, FifoEvictionUnderThreads) {
  // Bounded caches with FIFO eviction, under quantum scheduling: evicting
  // a fragment some suspended thread is parked in must defer its bytes,
  // and the run must stay transparent in both sharing modes.
  Program P = sharedFnProgram(3, 400);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  for (CacheSharing Sharing :
       {CacheSharing::ThreadPrivate, CacheSharing::Shared}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = Sharing;
    Config.Eviction = EvictionPolicy::Fifo;
    // Shared mode packs every thread's working set into ONE bounded cache,
    // and guard-pinned slots of suspended threads cannot be reclaimed, so
    // its floor is a bit higher than a single private slice's.
    bool IsShared = Sharing == CacheSharing::Shared;
    Config.BbCacheSize = IsShared ? 640 : 256;
    Config.TraceCacheSize = IsShared ? 640 : 256;
    Config.ThreadQuantum = 700;
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    ThreadedRunner Runner(M, Config);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited)
        << R.FaultReason << " mode " << int(Sharing);
    EXPECT_EQ(M.output(), Native.output()) << "mode " << int(Sharing);
    EXPECT_GE(sumStat(Runner, "cache_evictions"), 1u) << "mode "
                                                      << int(Sharing);
  }
}

//===----------------------------------------------------------------------===//
// Versioned publication, epoch retirement, and OSR under threads
//===----------------------------------------------------------------------===//

/// sharedFnProgram, plus a private warm-up loop per worker that is hot
/// enough (> TraceThreshold iterations) to become its own trace. The
/// deopt hook below skips traces stitched from its own hook block, so
/// this guarantees at least one eligible trace even in ThreadPrivate
/// mode, where a runtime only ever sees its own thread's fragments.
Program deoptProgram(int Workers, int Iters) {
  std::string S = R"(
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
    main:
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  and esi, 0xFFFFFF\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";
  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov edx, 120\n"; // warm-up: its own trace, no hook block
    S += "prep" + Id + ":\n";
    S += "  add esi, edx\n";
    S += "  dec edx\n  jnz prep" + Id + "\n";
    S += "  and esi, 1023\n";
    S += "  mov ecx, " + std::to_string(Iters) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  mov eax, ecx\n";
    S += "  call shared_fn\n";
    S += "  add esi, eax\n  and esi, 0xFFFFFF\n";
    S += "  dec ecx\n  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  S += R"(
    shared_fn:
      imul eax, eax, 17
      and eax, 1023
      add eax, 3
      ret
  )";
  return assembleOrDie(S);
}

/// From worker 0's loop body, periodically deoptimizes every live trace
/// except the one it is currently executing in. Each deoptimization
/// publishes a new version and retires the old body under a publication
/// epoch while the *other* workers are suspended mid-quantum — possibly
/// inside the retired bytes, where they are either OSR-transferred to the
/// new version or guard-pinned until they leave on their own.
class CrossThreadDeoptClient : public Client {
public:
  AppPc HookTag = 0;
  int MaxRounds = 12;
  int Rounds = 0;
  int Deopts = 0;

  void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &Block) override {
    if (Tag != HookTag)
      return;
    uint32_t Id = RT.registerCleanCall([this](CleanCallContext &Ctx) {
      if (Rounds >= MaxRounds)
        return;
      std::vector<AppPc> Tags;
      Ctx.RT.forEachFragment([&](const Fragment &F) {
        // Skip the fragment this clean call returns into, and anything
        // stitched from the hook block (deoptimization rebuilds pristine
        // bodies, which would drop this instrumentation).
        if (!F.isTrace() || F.TraceBlocks.empty() || F.Tag == Ctx.FragmentTag)
          return;
        if (std::find(F.TraceBlocks.begin(), F.TraceBlocks.end(), HookTag) !=
            F.TraceBlocks.end())
          return;
        Tags.push_back(F.Tag);
      });
      if (Tags.empty())
        return;
      ++Rounds;
      for (AppPc T : Tags)
        Deopts += dr_deoptimize_fragment(&Ctx.RT, T);
    });
    Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                     {Operand::imm(int64_t(Id), 4)});
    ASSERT_NE(Call, nullptr);
    Block.prepend(Call);
  }
};

TEST(Threads, PublicationWhileThreadsSuspendedMidTrace) {
  Program P = deoptProgram(3, 400);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  for (CacheSharing Sharing :
       {CacheSharing::ThreadPrivate, CacheSharing::Shared}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = Sharing;
    Config.ThreadQuantum = 700; // frequent mid-fragment suspensions
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    CrossThreadDeoptClient C;
    C.HookTag = P.symbol("wloop0");
    ThreadedRunner Runner(M, Config, &C);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited)
        << R.FaultReason << " mode " << int(Sharing);
    EXPECT_EQ(M.output(), Native.output()) << "mode " << int(Sharing);
    EXPECT_GE(C.Deopts, 1) << "mode " << int(Sharing);
    EXPECT_GE(sumStat(Runner, "deoptimizations"), 1u);
    EXPECT_GE(sumStat(Runner, "sideline_versions_published"), 1u);
    if (Sharing == CacheSharing::Shared) {
      // Four contexts share one runtime: with twelve publication rounds
      // against a 700-cycle quantum, some worker was parked at a side
      // exit of a retired body and must have been transferred on-stack.
      EXPECT_GE(sumStat(Runner, "osr_transfers"), 1u);
      Runtime *RT0 = Runner.runtimeFor(0);
      ASSERT_NE(RT0, nullptr);
      EXPECT_GE(RT0->publicationEpoch(), 1u);
      // Run over: everyone left the cache, the whole history is safe.
      EXPECT_EQ(RT0->minSafeEpoch(), RT0->publicationEpoch());
    }
  }
}

TEST(Threads, EpochRetirementWithBoundedCaches) {
  // Superseded versions retire into a bounded FIFO cache mid-quantum: the
  // allocator may only reuse a retired slot once every suspended context
  // has both left its bytes (guard pcs) and passed the retirement epoch.
  Program P = deoptProgram(3, 400);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  for (CacheSharing Sharing :
       {CacheSharing::ThreadPrivate, CacheSharing::Shared}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Sharing = Sharing;
    Config.Eviction = EvictionPolicy::Fifo;
    bool IsShared = Sharing == CacheSharing::Shared;
    Config.BbCacheSize = IsShared ? 640 : 256;
    Config.TraceCacheSize = IsShared ? 768 : 384;
    Config.ThreadQuantum = 700;
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    CrossThreadDeoptClient C;
    C.HookTag = P.symbol("wloop0");
    C.MaxRounds = 6;
    ThreadedRunner Runner(M, Config, &C);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited)
        << R.FaultReason << " mode " << int(Sharing);
    EXPECT_EQ(M.output(), Native.output()) << "mode " << int(Sharing);
    EXPECT_GE(sumStat(Runner, "cache_evictions"), 1u)
        << "mode " << int(Sharing);
  }
}

TEST(Threads, GettidSyscall) {
  NativeRun R = runSource(R"(
    main:
      mov eax, 7
      int 0x80          ; gettid -> eax
      mov ebx, eax      ; main thread is tid 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 0);
}

} // namespace
