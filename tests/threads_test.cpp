//===- tests/threads_test.cpp - Multi-threaded application tests ---------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded applications under the runtime: thread-private code
/// caches (paper Section 2), per-thread client hooks (Table 3), and the
/// transparency invariant extended across threads.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "clients/Clients.h"
#include "core/ThreadedRunner.h"

using namespace rio;
using namespace rio::test;

namespace {

/// A race-free multi-threaded program: main spawns N workers, each sums a
/// disjoint slice of an array into its own result slot and raises a done
/// flag; main spins until all flags are up, then prints the combined sum.
/// Deterministic result under ANY fair schedule.
Program workerProgram(int Workers, int Elems) {
  std::string S = R"(
    data:    .space 4096
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
  )";
  S += "main:\n";
  // Fill data with i & 255.
  S += R"(
      mov ecx, 0
    init:
      mov eax, ecx
      and eax, 255
      mov edx, ecx
      shl edx, 2
      mov [data+edx], eax
      inc ecx
      cmp ecx, 1024
      jnz init
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  // Spin-join on the flags.
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  // Combine and print.
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";

  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    int Lo = W * Elems;
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov ecx, " + std::to_string(Lo) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  mov edx, ecx\n  shl edx, 2\n";
    S += "  add esi, [data+edx]\n";
    S += "  inc ecx\n";
    S += "  cmp ecx, " + std::to_string(Lo + Elems) + "\n";
    S += "  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n";
    S += "  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  return assembleOrDie(S);
}

/// Expected sum for workerProgram(Workers, Elems).
int expectedSum(int Workers, int Elems) {
  int Sum = 0;
  for (int I = 0; I != Workers * Elems; ++I)
    Sum += I & 255;
  return Sum;
}

TEST(Threads, NativeThreadedExecutionWorks) {
  Program P = workerProgram(3, 200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RunResult R = runThreadedNative(M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), std::to_string(expectedSum(3, 200)) + "\n");
  EXPECT_EQ(M.numThreads(), 4u);
}

TEST(Threads, RuntimeMatchesNativeOutput) {
  Program P = workerProgram(3, 200);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ThreadedRunner Runner(M, RuntimeConfig::full());
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, NR.ExitCode);
  EXPECT_EQ(M.output(), Native.output());
}

TEST(Threads, EveryConfigurationIsTransparent) {
  Program P = workerProgram(2, 150);
  std::string Expected = std::to_string(expectedSum(2, 150)) + "\n";
  const RuntimeConfig Configs[] = {
      RuntimeConfig::bbCacheOnly(), RuntimeConfig::linkDirect(),
      RuntimeConfig::linkIndirect(), RuntimeConfig::full()};
  for (const RuntimeConfig &Config : Configs) {
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    ThreadedRunner Runner(M, Config);
    RunResult R = Runner.run();
    ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
    EXPECT_EQ(M.output(), Expected);
  }
}

TEST(Threads, CachesAreThreadPrivate) {
  // All three workers execute the *same* shared summing pattern... but
  // each worker body is distinct code here, so instead verify the sharper
  // claim: fragments live in disjoint per-thread cache regions and each
  // thread built its own.
  Program P = workerProgram(3, 200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ThreadedRunner Runner(M, RuntimeConfig::full());
  ASSERT_EQ(Runner.run().Status, RunStatus::Exited);
  ASSERT_EQ(Runner.threadsSeen(), 4u);

  uint32_t Slice = M.config().RuntimeRegionSize / ThreadedRunner::MaxThreads;
  for (unsigned Tid = 0; Tid != 4; ++Tid) {
    Runtime *RT = Runner.runtimeFor(Tid);
    ASSERT_NE(RT, nullptr);
    EXPECT_GE(RT->stats().get("basic_blocks_built"), 1u) << "thread " << Tid;
    uint32_t Lo = M.runtimeBase() + Tid * Slice;
    RT->forEachFragment([&](const Fragment &Frag) {
      EXPECT_GE(Frag.CacheAddr, Lo);
      EXPECT_LT(Frag.CacheAddr, Lo + Slice);
    });
  }
}

TEST(Threads, ClientThreadHooksFire) {
  class HookCounter : public Client {
  public:
    int Inits = 0, Exits = 0, ThreadInits = 0, ThreadExits = 0;
    void onInit(Runtime &) override { ++Inits; }
    void onExit(Runtime &) override { ++Exits; }
    void onThreadInit(Runtime &) override { ++ThreadInits; }
    void onThreadExit(Runtime &) override { ++ThreadExits; }
  };
  Program P = workerProgram(3, 100);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  HookCounter C;
  ThreadedRunner Runner(M, RuntimeConfig::full(), &C);
  ASSERT_EQ(Runner.run().Status, RunStatus::Exited);
  EXPECT_EQ(C.Inits, 1);
  EXPECT_EQ(C.Exits, 1);
  EXPECT_EQ(C.ThreadInits, 4);
  EXPECT_EQ(C.ThreadExits, 4);
}

TEST(Threads, OptimizationClientsWorkAcrossThreads) {
  Program P = workerProgram(3, 300);
  std::string Expected = std::to_string(expectedSum(3, 300)) + "\n";
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  CustomTracesClient C1;
  RlrClient C2;
  StrengthReduceClient C3;
  IBDispatchClient C4;
  MultiClient All({&C1, &C2, &C3, &C4});
  ThreadedRunner Runner(M, RuntimeConfig::full(), &All);
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Expected);
}

TEST(Threads, DeterministicScheduling) {
  Program P = workerProgram(2, 128);
  auto Once = [&] {
    Machine M;
    loadProgram(M, P);
    ThreadedRunner Runner(M, RuntimeConfig::full());
    RunResult R = Runner.run();
    return std::pair(R.Cycles, M.output());
  };
  auto A = Once();
  auto B = Once();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}

TEST(Threads, GettidSyscall) {
  NativeRun R = runSource(R"(
    main:
      mov eax, 7
      int 0x80          ; gettid -> eax
      mov ebx, eax      ; main thread is tid 0
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 0);
}

} // namespace
