//===- tests/asm_test.cpp - Assembler and disassembler tests ------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "asm/Disasm.h"

using namespace rio;
using namespace rio::test;

namespace {

TEST(Assembler, SymbolsAndDirectives) {
  Program P = assembleOrDie(R"(
    .org 0x2000
    .entry start
    table: .word start 42 start
    bytes: .byte 1 2 3
    msg:   .asciz "hi"
    .align 8
    vals:  .f64 1.5
    start:
      nop
      hlt
  )");
  EXPECT_EQ(P.LoadAddr, 0x2000u);
  EXPECT_EQ(P.Entry, P.symbol("start"));
  EXPECT_NE(P.symbol("table"), 0u);
  // table[0] and table[2] hold the address of start; table[1] holds 42.
  uint32_t W0, W1;
  std::memcpy(&W0, &P.Bytes[P.symbol("table") - P.LoadAddr], 4);
  std::memcpy(&W1, &P.Bytes[P.symbol("table") - P.LoadAddr + 4], 4);
  EXPECT_EQ(W0, P.symbol("start"));
  EXPECT_EQ(W1, 42u);
  // .align 8 aligned vals.
  EXPECT_EQ(P.symbol("vals") % 8, 0u);
  // .asciz added the terminator.
  EXPECT_EQ(P.Bytes[P.symbol("msg") - P.LoadAddr + 2], 0);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  Program P;
  std::string Error;
  EXPECT_FALSE(assemble("main:\n  bogus eax, 1\n  hlt\n", P, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos);
  EXPECT_NE(Error.find("bogus"), std::string::npos);

  EXPECT_FALSE(assemble("main:\n  jmp nowhere\n", P, Error));
  EXPECT_NE(Error.find("undefined"), std::string::npos);

  EXPECT_FALSE(assemble("dup:\ndup:\n  hlt\n", P, Error));
  EXPECT_NE(Error.find("duplicate"), std::string::npos);

  EXPECT_FALSE(assemble("  hlt\n", P, Error)); // no entry symbol 'main'
}

TEST(Assembler, MemoryOperandForms) {
  NativeRun R = runSource(R"(
    data: .word 10 20 30 40
    main:
      mov esi, data
      mov eax, [esi]          ; base
      add eax, [esi+4]        ; base+disp
      mov ecx, 2
      add eax, [esi+ecx*4]    ; base+index*scale
      add eax, [data+12]      ; symbol+disp
      mov ecx, 3
      add eax, [data+ecx*4]   ; symbol+index*scale
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 10 + 20 + 30 + 40 + 40);
}

TEST(Assembler, NegativeAndHexImmediates) {
  NativeRun R = runSource(R"(
    main:
      mov eax, -5
      add eax, 0x10
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 11);
}

TEST(Assembler, IndirectFormsSelectIndirectOpcodes) {
  // jmp/call with non-symbol operands assemble to the indirect opcodes.
  NativeRun R = runSource(R"(
    fp: .word target
    main:
      mov eax, target
      jmp eax
    dead:
      mov ebx, 99
      mov eax, 1
      int 0x80
    target:
      call [fp2]
      mov ebx, esi
      mov eax, 1
      int 0x80
    fp2: .word helper
    helper:
      mov esi, 7
      ret
  )");
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(Assembler, JecxzAssembles) {
  NativeRun R = runSource(R"(
    main:
      mov ecx, 0
      jecxz iszero
      mov ebx, 0
      jmp done
    iszero:
      mov ebx, 1
    done:
      mov eax, 1
      int 0x80
  )");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(Disasm, RoundTripsAProgram) {
  Program P = assembleOrDie(R"(
    main:
      mov eax, 1
      add eax, [counter]
      jnz main
      hlt
    counter: .word 5
  )");
  std::string Text = disassembleRange(P.Bytes.data(), P.Bytes.size(),
                                      P.LoadAddr, P.Entry, P.symbol("counter"));
  EXPECT_NE(Text.find("mov %eax, $0x1"), std::string::npos);
  EXPECT_NE(Text.find("add %eax"), std::string::npos);
  EXPECT_NE(Text.find("jnz"), std::string::npos);
  EXPECT_NE(Text.find("hlt"), std::string::npos);
}

TEST(Loader, SetsUpStackAndEntry) {
  Program P = assembleOrDie("main:\n  hlt\n");
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  EXPECT_EQ(M.cpu().Pc, P.Entry);
  uint32_t Esp = M.cpu().readGpr32(REG_ESP);
  EXPECT_EQ(Esp % 16, 0u);
  EXPECT_LT(Esp, M.runtimeBase());
  EXPECT_GT(Esp, M.runtimeBase() - 256);
}

} // namespace
