//===- tests/fork_test.cpp - Copy-on-write machine forking -------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for copy-on-write forking, bottom to top:
///
///   - MemoryImage page semantics: scalar and block accesses straddling
///     page boundaries, zero-length writes at the image end, out-of-bounds
///     parity (every accessor rejects, nothing is partially written);
///   - CoW mechanics: a fork shares every page until written, a write
///     privatizes exactly one page (counted in cowPageCopies), destroying
///     a fork returns sole ownership so later writes reclaim in place;
///   - Machine forks: a tenant's writes never leak into the template;
///   - Runtime::forkFrom: a forked tenant re-runs the program with cycle
///     counts bit-identical to a cold runtime's second (steady-state) run,
///     explicit cache mutation unshares exactly once, the template keeps
///     working after its tenants are destroyed, and the guard rails
///     (unfrozen template, attached client) refuse to fork;
///   - the TenantFleet helper and the dr_fork_machine API veneer.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "clients/Clients.h"
#include "core/Runtime.h"
#include "core/ThreadedRunner.h"
#include "vm/Memory.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace rio;
using namespace rio::test;

namespace {

//===----------------------------------------------------------------------===//
// MemoryImage page-boundary semantics
//===----------------------------------------------------------------------===//

// Deliberately not page-aligned: the last page is partial, so "end of
// image" and "end of page" are different edges.
constexpr uint32_t ImageBytes = 3 * CowBlockBytes + 100;
constexpr uint32_t PageEdge = CowBlockBytes; // first boundary

TEST(PageBoundary, ScalarAccessesStraddlePages) {
  MemoryImage Mem(ImageBytes);

  // A 32-bit write two bytes before the page edge lands bytes on both
  // sides; each byte must read back from the right page.
  ASSERT_TRUE(Mem.write32(PageEdge - 2, 0xA1B2C3D4u));
  uint32_t V32 = 0;
  ASSERT_TRUE(Mem.read32(PageEdge - 2, V32));
  EXPECT_EQ(V32, 0xA1B2C3D4u);
  uint8_t B = 0;
  ASSERT_TRUE(Mem.read8(PageEdge - 2, B));
  EXPECT_EQ(B, 0xD4); // little-endian low byte, last-but-one of page 0
  ASSERT_TRUE(Mem.read8(PageEdge + 1, B));
  EXPECT_EQ(B, 0xA1); // high byte, second byte of page 1

  // Same for a 64-bit access placed to split 3/5 across the edge.
  ASSERT_TRUE(Mem.write64(2 * PageEdge - 3, 0x1122334455667788ull));
  uint64_t V64 = 0;
  ASSERT_TRUE(Mem.read64(2 * PageEdge - 3, V64));
  EXPECT_EQ(V64, 0x1122334455667788ull);

  // The straddling write dirtied both pages; a non-straddling read in
  // either page sees its half.
  ASSERT_TRUE(Mem.read8(2 * PageEdge, B));
  EXPECT_EQ(B, 0x55);
}

TEST(PageBoundary, BlockAccessesSpanSeveralPages) {
  MemoryImage Mem(ImageBytes);
  // A block covering parts of page 0, all of page 1, and part of page 2.
  std::vector<uint8_t> Src(2 * CowBlockBytes + 123);
  for (size_t I = 0; I != Src.size(); ++I)
    Src[I] = uint8_t(I * 7 + 3);
  const uint32_t Addr = PageEdge - 57;
  ASSERT_TRUE(Mem.writeBlock(Addr, Src.data(), uint32_t(Src.size())));

  std::vector<uint8_t> Back(Src.size());
  ASSERT_TRUE(Mem.readBlock(Addr, Back.data(), uint32_t(Back.size())));
  EXPECT_EQ(Src, Back);

  // readWindow straddling the edge must stitch through the scratch buffer
  // and agree with readBlock.
  uint8_t Scratch[64];
  const uint8_t *Win = Mem.readWindow(PageEdge - 8, 16, Scratch);
  ASSERT_NE(Win, nullptr);
  EXPECT_EQ(Win, Scratch); // straddle: must be the copy, not a page pointer
  uint8_t Direct[16];
  ASSERT_TRUE(Mem.readBlock(PageEdge - 8, Direct, 16));
  EXPECT_EQ(0, std::memcmp(Win, Direct, 16));

  // Within one page, the window is a direct pointer (no copy).
  const uint8_t *InPage = Mem.readWindow(PageEdge + 8, 16, Scratch);
  ASSERT_NE(InPage, nullptr);
  EXPECT_NE(InPage, Scratch);
}

TEST(PageBoundary, ZeroLengthWriteIsABoundsProbe) {
  MemoryImage Mem(ImageBytes);
  // Zero-length at the very end: succeeds, touches nothing.
  EXPECT_TRUE(Mem.writeBlock(Mem.size(), nullptr, 0));
  EXPECT_TRUE(Mem.readBlock(Mem.size(), nullptr, 0));
  EXPECT_EQ(Mem.privatePages(), 0u);
  // One past the end: out of bounds even for zero bytes.
  EXPECT_FALSE(Mem.writeBlock(Mem.size() + 1, nullptr, 0));
  EXPECT_FALSE(Mem.readBlock(Mem.size() + 1, nullptr, 0));
}

TEST(PageBoundary, OutOfBoundsRejectsWithoutPartialWrites) {
  MemoryImage Mem(ImageBytes);
  const uint32_t End = Mem.size();
  uint8_t B;
  uint32_t V32;
  uint64_t V64;

  // Scalars overlapping the end: all rejected.
  EXPECT_FALSE(Mem.read8(End, B));
  EXPECT_FALSE(Mem.read32(End - 3, V32));
  EXPECT_FALSE(Mem.read64(End - 7, V64));
  EXPECT_FALSE(Mem.write8(End, 1));
  EXPECT_FALSE(Mem.write32(End - 3, 0xFFFFFFFFu));
  EXPECT_FALSE(Mem.write64(End - 7, ~0ull));

  // Far past the end, including address-arithmetic-overflow territory.
  EXPECT_FALSE(Mem.read32(0xFFFFFFFCu, V32));
  EXPECT_FALSE(Mem.write32(0xFFFFFFFCu, 1));
  uint8_t Buf[8] = {};
  EXPECT_FALSE(Mem.writeBlock(End - 4, Buf, 8));
  EXPECT_FALSE(Mem.readBlock(End - 4, Buf, 8));
  EXPECT_EQ(Mem.readWindow(End - 4, 8, Buf), nullptr);

  // A rejected write must write nothing at all: the last bytes are
  // untouched (still zero), and no page was privatized along the way.
  for (uint32_t A = End - 8; A != End; ++A) {
    ASSERT_TRUE(Mem.read8(A, B));
    EXPECT_EQ(B, 0);
  }
  EXPECT_EQ(Mem.privatePages(), 0u);
  EXPECT_EQ(Mem.cowPageCopies(), 0u);
}

//===----------------------------------------------------------------------===//
// CoW mechanics
//===----------------------------------------------------------------------===//

TEST(Cow, FirstWriteToAnUntouchedPageIsNotACopy) {
  MemoryImage Mem(ImageBytes);
  EXPECT_EQ(Mem.privatePages(), 0u); // everything aliases the zero block
  ASSERT_TRUE(Mem.write8(5, 42));
  EXPECT_EQ(Mem.privatePages(), 1u);
  EXPECT_EQ(Mem.cowPageCopies(), 0u); // materialized, not copied
}

TEST(Cow, ForkSharesEveryPageUntilWritten) {
  MemoryImage A(ImageBytes);
  ASSERT_TRUE(A.write32(100, 0xDEADBEEFu));
  ASSERT_TRUE(A.write32(PageEdge + 100, 0xCAFEF00Du));
  EXPECT_EQ(A.privatePages(), 2u);

  MemoryImage B(A);
  // The fork owns nothing privately; both views read the same data.
  EXPECT_EQ(B.privatePages(), 0u);
  EXPECT_EQ(A.privatePages(), 0u); // the source lost exclusivity too
  uint32_t V = 0;
  ASSERT_TRUE(B.read32(100, V));
  EXPECT_EQ(V, 0xDEADBEEFu);

  // A write in the fork copies exactly that one page...
  ASSERT_TRUE(B.write32(100, 0x11111111u));
  EXPECT_EQ(B.cowPageCopies(), 1u);
  // ...with the template's byte unchanged...
  ASSERT_TRUE(A.read32(100, V));
  EXPECT_EQ(V, 0xDEADBEEFu);
  // ...and the other shared page still untouched on both sides.
  ASSERT_TRUE(B.read32(PageEdge + 100, V));
  EXPECT_EQ(V, 0xCAFEF00Du);

  // B's copy made A the sole owner of the original page again: A's next
  // write there reclaims in place, no second copy anywhere.
  ASSERT_TRUE(A.write32(104, 7));
  EXPECT_EQ(A.cowPageCopies(), 0u);
  ASSERT_TRUE(B.read32(104, V));
  EXPECT_EQ(V, 0u); // B's copy predates A's write
}

TEST(Cow, DestroyedForkReturnsSoleOwnership) {
  MemoryImage A(ImageBytes);
  ASSERT_TRUE(A.write32(8, 0x12345678u));
  {
    MemoryImage B(A);
    uint32_t V = 0;
    ASSERT_TRUE(B.read32(8, V));
    EXPECT_EQ(V, 0x12345678u);
  } // B dies without writing: its references drop
  // A is sole owner again: writing costs no copy.
  ASSERT_TRUE(A.write32(12, 9));
  EXPECT_EQ(A.cowPageCopies(), 0u);
  uint32_t V = 0;
  ASSERT_TRUE(A.read32(8, V));
  EXPECT_EQ(V, 0x12345678u);
}

TEST(Cow, CopyCountsAreExactPerPage) {
  MemoryImage A(ImageBytes);
  ASSERT_TRUE(A.write8(0, 1));                 // page 0
  ASSERT_TRUE(A.write8(PageEdge, 2));          // page 1
  ASSERT_TRUE(A.write8(2 * PageEdge, 3));      // page 2
  MemoryImage B(A);
  // Two writes into page 0 fault once; one into page 2 faults once; page 1
  // is never written. Exactly two copies.
  ASSERT_TRUE(B.write8(1, 10));
  ASSERT_TRUE(B.write8(2, 11));
  ASSERT_TRUE(B.write8(2 * PageEdge + 1, 12));
  EXPECT_EQ(B.cowPageCopies(), 2u);
  // Writing a page nobody dirtied (still the zero block) in the fork is a
  // materialization, not a copy.
  ASSERT_TRUE(B.write8(3 * PageEdge + 1, 13));
  EXPECT_EQ(B.cowPageCopies(), 2u);
}

//===----------------------------------------------------------------------===//
// Machine forks
//===----------------------------------------------------------------------===//

/// Same shape as persist_test's dispatch workload: a hot loop through a
/// skewed jump table (traces + IBL), with the checksum printed so any
/// execution divergence shows in the output. No data writes, so a reset
/// machine re-runs it identically.
Program dispatchProgram(int Iters) {
  return assembleOrDie(R"(
    .entry main
    table: .word h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h1 h2 h3 h4
    main:
      mov esi, 0
      mov eax, 12345
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    h4:
      add esi, 65537
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

TEST(MachineFork, TenantWritesNeverReachTheTemplate) {
  Program Prog = dispatchProgram(200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));

  Machine Fork(M);
  // The fork runs the whole program; the template's memory and state stay
  // exactly as loaded.
  while (Fork.status() == RunStatus::Running)
    Fork.step();
  EXPECT_EQ(Fork.status(), RunStatus::Exited);
  EXPECT_FALSE(Fork.output().empty());

  EXPECT_EQ(M.status(), RunStatus::Running);
  EXPECT_TRUE(M.output().empty());
  EXPECT_EQ(M.cycles(), 0u);
  // And the template still runs to the same answer afterwards.
  while (M.status() == RunStatus::Running)
    M.step();
  EXPECT_EQ(M.output(), Fork.output());
}

//===----------------------------------------------------------------------===//
// Runtime::forkFrom
//===----------------------------------------------------------------------===//

struct SteadyState {
  uint64_t Run1Cycles = 0;
  uint64_t Run2Cycles = 0; ///< the steady-state delta every tenant must hit
  std::string Output;
};

/// Cold reference: run once (warming the caches), rewind, run again, and
/// report the second run's cycle delta.
SteadyState coldTwoRuns(const Program &Prog, const RuntimeConfig &Config) {
  SteadyState S;
  Machine M;
  EXPECT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, Config);
  uint64_t C0 = M.cycles();
  EXPECT_EQ(RT.run().Status, RunStatus::Exited);
  S.Run1Cycles = M.cycles() - C0;
  M.resetForRun();
  RT.resetThreadForRun();
  uint64_t C1 = M.cycles();
  EXPECT_EQ(RT.run().Status, RunStatus::Exited);
  S.Run2Cycles = M.cycles() - C1;
  S.Output = M.output();
  return S;
}

TEST(RuntimeFork, TenantRunsBitIdenticalToColdSecondRun) {
  Program Prog = dispatchProgram(600);
  for (bool Ib : {false, true}) {
    RuntimeConfig Config = RuntimeConfig::full();
    Config.IbInline = Ib;
    SteadyState Cold = coldTwoRuns(Prog, Config);

    // Template: warm up once, rewind, freeze.
    Machine M;
    ASSERT_TRUE(loadProgram(M, Prog));
    Runtime Template(M, Config);
    ASSERT_EQ(Template.run().Status, RunStatus::Exited);
    M.resetForRun();
    Template.resetThreadForRun();
    std::string Err;
    ASSERT_TRUE(Template.freezeTemplate(&Err)) << Err;

    // Several tenants, all alive at once, each bit-identical to the cold
    // steady-state run.
    std::vector<std::unique_ptr<Machine>> Machines;
    std::vector<std::unique_ptr<Runtime>> Tenants;
    for (int T = 0; T != 3; ++T) {
      Machines.push_back(std::make_unique<Machine>(M));
      auto Tenant = Runtime::forkFrom(Template, *Machines.back(), &Err);
      ASSERT_NE(Tenant, nullptr) << Err;
      EXPECT_TRUE(Tenant->isForked());
      uint64_t C0 = Machines.back()->cycles();
      RunResult R = Tenant->run();
      EXPECT_EQ(R.Status, RunStatus::Exited);
      EXPECT_EQ(Machines.back()->cycles() - C0, Cold.Run2Cycles)
          << "tenant " << T << " diverged (IbInline=" << Ib << ")";
      EXPECT_EQ(Machines.back()->output(), Cold.Output);
      Tenants.push_back(std::move(Tenant));
    }
    // And the template itself still replays its steady state afterwards.
    Tenants.clear();
    Machines.clear();
    M.resetForRun();
    Template.resetThreadForRun();
    uint64_t C0 = M.cycles();
    EXPECT_EQ(Template.run().Status, RunStatus::Exited);
    EXPECT_EQ(M.cycles() - C0, Cold.Run2Cycles);
  }
}

TEST(RuntimeFork, ExplicitMutationUnsharesExactlyOnce) {
  Program Prog = dispatchProgram(400);
  RuntimeConfig Config = RuntimeConfig::full();

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime Template(M, Config);
  ASSERT_EQ(Template.run().Status, RunStatus::Exited);
  M.resetForRun();
  Template.resetThreadForRun();
  ASSERT_TRUE(Template.freezeTemplate());
  const size_t TemplateFrags = Template.numFragments();

  Machine TenantM(M);
  auto Tenant = Runtime::forkFrom(Template, TenantM);
  ASSERT_NE(Tenant, nullptr);
  EXPECT_TRUE(Tenant->isForked());
  EXPECT_EQ(Tenant->stats().get("fork_cache_unshares"), 0u);
  // The tenant sees the template's fragments through the shared view...
  EXPECT_NE(Tenant->lookupFragment(Prog.symbol("loop")), nullptr);
  EXPECT_EQ(Tenant->numFragments(), 0u); // ...but owns none itself.

  // Force a cache mutation: flushing empties the caches, which a shared
  // tenant must not do to its template.
  Tenant->flushCaches();
  EXPECT_FALSE(Tenant->isForked());
  EXPECT_EQ(Tenant->stats().get("fork_cache_unshares"), 1u);
  // The unshare cloned the fragments before the flush deleted them; the
  // template's stayed put.
  EXPECT_EQ(Template.numFragments(), TemplateFrags);
  EXPECT_NE(Template.lookupFragment(Prog.symbol("loop")), nullptr);

  // A second mutation does not unshare again.
  Tenant->flushCaches();
  EXPECT_EQ(Tenant->stats().get("fork_cache_unshares"), 1u);

  // The tenant still runs to the right answer on its rebuilt caches.
  uint64_t CacheCopies = TenantM.mem().cowPageCopies();
  EXPECT_GT(CacheCopies, 0u); // the clone had to privatize cache pages
  RunResult R = Tenant->run();
  EXPECT_EQ(R.Status, RunStatus::Exited);
  std::string Cold = coldTwoRuns(Prog, Config).Output;
  EXPECT_EQ(TenantM.output(), Cold);
}

TEST(RuntimeFork, GuardRailsRefuseBadForks) {
  Program Prog = dispatchProgram(100);
  RuntimeConfig Config = RuntimeConfig::full();
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime Template(M, Config);
  ASSERT_EQ(Template.run().Status, RunStatus::Exited);

  std::string Err;
  Machine TenantM(M);
  // Not frozen yet.
  EXPECT_EQ(Runtime::forkFrom(Template, TenantM, &Err), nullptr);
  EXPECT_FALSE(Err.empty());
  // Forking onto the template's own machine.
  M.resetForRun();
  Template.resetThreadForRun();
  ASSERT_TRUE(Template.freezeTemplate(&Err)) << Err;
  EXPECT_EQ(Runtime::forkFrom(Template, M, &Err), nullptr);

  // A runtime with a non-persist-safe client cannot freeze: the client's
  // effect is not captured by the serialized bytes, so tenants running
  // without it would diverge. A persist-safe client (pure code transform)
  // is freezable — the trace optimizer's non-speculative tier relies on
  // that to warm fork templates.
  class StatefulClient : public Client {}; // persistSafe() defaults false
  Machine M2;
  ASSERT_TRUE(loadProgram(M2, Prog));
  StatefulClient Client;
  Runtime WithClient(M2, Config, &Client);
  ASSERT_EQ(WithClient.run().Status, RunStatus::Exited);
  EXPECT_FALSE(WithClient.freezeTemplate(&Err));

  Machine M3;
  ASSERT_TRUE(loadProgram(M3, Prog));
  NullClient Pure;
  Runtime WithPure(M3, Config, &Pure);
  ASSERT_EQ(WithPure.run().Status, RunStatus::Exited);
  M3.resetForRun();
  WithPure.resetThreadForRun();
  EXPECT_TRUE(WithPure.freezeTemplate(&Err)) << Err;
}

TEST(RuntimeFork, TenantFleetSpawnsIdenticalTenants) {
  Program Prog = dispatchProgram(300);
  RuntimeConfig Config = RuntimeConfig::full();
  SteadyState Cold = coldTwoRuns(Prog, Config);

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime Template(M, Config);
  ASSERT_EQ(Template.run().Status, RunStatus::Exited);
  M.resetForRun();
  Template.resetThreadForRun();
  std::string Err;
  ASSERT_TRUE(Template.freezeTemplate(&Err)) << Err;

  TenantFleet Fleet;
  ASSERT_TRUE(Fleet.spawn(Template, M, 4, &Err)) << Err;
  ASSERT_EQ(Fleet.size(), 4u);
  for (auto &T : Fleet) {
    uint64_t C0 = T.M->cycles();
    EXPECT_EQ(T.RT->run().Status, RunStatus::Exited);
    EXPECT_EQ(T.M->cycles() - C0, Cold.Run2Cycles);
    EXPECT_EQ(T.M->output(), Cold.Output);
  }
  Fleet.clear();
  // Template intact after the fleet is gone.
  M.resetForRun();
  Template.resetThreadForRun();
  EXPECT_EQ(Template.run().Status, RunStatus::Exited);
}

//===----------------------------------------------------------------------===//
// dr_ API veneer
//===----------------------------------------------------------------------===//

TEST(DrFork, ApiRoundTrip) {
  Program Prog = dispatchProgram(300);
  RuntimeConfig Config = RuntimeConfig::full();
  SteadyState Cold = coldTwoRuns(Prog, Config);

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime Template(M, Config);
  ASSERT_EQ(Template.run().Status, RunStatus::Exited);
  M.resetForRun();
  Template.resetThreadForRun();

  // dr_fork_machine freezes on demand.
  EXPECT_FALSE(Template.isFrozenTemplate());
  void *Tenant = dr_fork_machine(&Template);
  ASSERT_NE(Tenant, nullptr);
  EXPECT_TRUE(Template.isFrozenTemplate());
  EXPECT_TRUE(dr_is_forked(Tenant));
  EXPECT_FALSE(dr_is_forked(&Template));

  Machine *TenantM = dr_fork_machine_of(Tenant);
  ASSERT_NE(TenantM, nullptr);
  EXPECT_EQ(dr_fork_machine_of(&Template), nullptr);

  uint64_t C0 = TenantM->cycles();
  RunResult R = static_cast<Runtime *>(Tenant)->run();
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(TenantM->cycles() - C0, Cold.Run2Cycles);
  EXPECT_EQ(TenantM->output(), Cold.Output);

  dr_fork_delete(Tenant);
  dr_fork_delete(Tenant); // idempotent on unknown contexts

  // Template still serves after its tenant is gone.
  M.resetForRun();
  Template.resetThreadForRun();
  EXPECT_EQ(Template.run().Status, RunStatus::Exited);
}

} // namespace
