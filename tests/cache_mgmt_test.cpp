//===- tests/cache_mgmt_test.cpp - Code-cache management tests ---------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the CacheManager subsystem: bounded caches with FIFO
/// eviction, deferred slot reclamation (stale-exit fallback), consistency
/// invalidation of self-modifying code, and dr_flush_region — including
/// calling it from a clean call that is logically inside the flushed
/// fragment.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "core/Runtime.h"
#include "workloads/Workloads.h"

using namespace rio;
using namespace rio::test;

namespace {

/// A long chain of one-use blocks followed by a hot loop, repeated \p Laps
/// times: enough distinct fragments to overflow a small bounded block
/// cache, with re-use so retention policy matters.
Program chainProgram(int Blocks, int Laps) {
  std::string Src = R"(
    main:
      mov esi, 0
      mov edi, )" + std::to_string(Laps) + R"(
    chain:
      jmp b0
  )";
  for (int I = 0; I != Blocks; ++I) {
    Src += "b" + std::to_string(I) + ":\n";
    Src += "  add esi, " + std::to_string((I * 2654435761u >> 8) & 0xFFFF) +
           "\n";
    Src += "  and esi, 0xFFFFFF\n";
    Src += "  jmp b" + std::to_string(I + 1) + "\n";
  }
  Src += "b" + std::to_string(Blocks) + R"(:
      dec edi
      jnz chain
      mov ecx, 500
    hot:
      add esi, ecx
      and esi, 0xFFFFFF
      dec ecx
      jnz hot
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )";
  return assembleOrDie(Src);
}

Program hotLoopProgram(int Iters) {
  return assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, )" + std::to_string(Iters) + R"(
    loop:
      add esi, ecx
      and esi, 0x7FFFFFFF
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 1
      int 0x80
  )");
}

class CountingClient : public Client {
public:
  int Deletes = 0;
  void onFragmentDeleted(Runtime &, AppPc) override { ++Deletes; }
};

//===----------------------------------------------------------------------===//
// Eviction accounting
//===----------------------------------------------------------------------===//

TEST(CacheMgmt, EvictionNotifiesClientExactlyOncePerFragment) {
  Program P = chainProgram(400, 2);
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  CountingClient C;
  // No traces: every deletion in this configuration is a FIFO eviction,
  // so the client callback count must equal both counters exactly.
  RuntimeConfig Cfg = RuntimeConfig::linkDirect();
  Cfg.BbCacheSize = 8 * 1024; // the chain needs ~13KB of block fragments
  Runtime RT(M, Cfg, &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);

  uint64_t Evictions = RT.stats().get("cache_evictions");
  EXPECT_GE(Evictions, 1u);
  EXPECT_EQ(uint64_t(C.Deletes), Evictions);
  EXPECT_EQ(RT.stats().get("fragments_deleted"), Evictions);
}

//===----------------------------------------------------------------------===//
// Deferred reclamation: stale-exit fallback
//===----------------------------------------------------------------------===//

TEST(CacheMgmt, StaleExitFallbackAfterFlushWhileSuspended) {
  // Suspend mid-run (the thread sits logically inside a cache fragment),
  // flush the region holding the loop, then resume: the retired
  // fragment's bytes must stay in place (pending, guarded by the resume
  // pc) and its unlinked exits must fall back to the dispatcher, which
  // re-translates and finishes with the right answer.
  Program P = hotLoopProgram(50000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  RunResult Part = RT.runFor(3000);
  ASSERT_TRUE(Part.QuantumExpired);

  AppPc Loop = P.symbol("loop");
  ASSERT_NE(RT.lookupFragment(Loop), nullptr);
  RT.flushRegion(0, M.runtimeBase()); // every translated app byte
  EXPECT_EQ(RT.lookupFragment(Loop), nullptr);
  EXPECT_GE(RT.stats().get("region_flushed_fragments"), 1u);

  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, int((50000ull * 50001ull / 2) & 0x7FFFFFFF));
}

//===----------------------------------------------------------------------===//
// Consistency: self-modifying code
//===----------------------------------------------------------------------===//

TEST(CacheMgmt, SelfModifyingCodeRetranslates) {
  // The smc workload overwrites a function it then calls; executing stale
  // translated code changes the printed checksum. The write monitor must
  // invalidate the overlapping fragments — and only those.
  const Workload *W = findWorkload("smc");
  ASSERT_NE(W, nullptr);
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);

  uint64_t Writes = RT.stats().get("smc_code_writes");
  uint64_t Invalidations = RT.stats().get("smc_invalidations");
  uint64_t Built = RT.stats().get("basic_blocks_built") +
                   RT.stats().get("traces_built");
  EXPECT_GE(Writes, 1u);
  EXPECT_GE(Invalidations, 1u);
  // Precision: each write kills only the fragments overlapping it, never
  // the whole cache.
  EXPECT_LT(Invalidations, Built);
}

TEST(CacheMgmt, SmcWriteToDecodeCacheAliasedPc) {
  // Two functions exactly Machine::DecodeCacheLines bytes apart share a
  // direct-mapped decode-cache line (but live on different write-watch
  // lines). After both have executed — so the shared line has been filled
  // by each in turn — the program overwrites the first function's
  // immediate and calls both again. The stale decode must not survive:
  // natively via the line-generation invalidation, and under the runtime
  // via fragment invalidation of the aliased pc only.
  //
  //   warm:  4 * (7 + 100)  = 428
  //   patch f1 -> returns 9
  //   again: 4 * (9 + 100)  = 436  => checksum 864
  std::string Pad =
      std::to_string(Machine::DecodeCacheLines - 8); // f1 body is 8 bytes
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 4
    warm:
      call f1
      add esi, eax
      call f2
      add esi, eax
      dec ecx
      jnz warm
      mov eax, [tmpl]
      mov edx, [tmpl+4]
      mov [f1], eax
      mov [f1+4], edx
      mov ecx, 4
    again:
      call f1
      add esi, eax
      call f2
      add esi, eax
      dec ecx
      jnz again
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
    f1:
      mov eax, 7
      ret
      nop
      nop
    .space )" + Pad + R"(
    f2:
      mov eax, 100
      ret
    tmpl:
      mov eax, 9
      ret
      nop
      nop
  )");
  ASSERT_EQ(P.symbol("f2") - P.symbol("f1"), Machine::DecodeCacheLines);

  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited) << Native.FaultReason;
  EXPECT_EQ(Native.Output, "864\n"); // stale decode would print 856

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  EXPECT_GE(RT.stats().get("smc_invalidations"), 1u);
}

TEST(CacheMgmt, MonitoringCanBeDisabled) {
  // With MonitorCodeWrites off the runtime must not fault on code writes
  // (it just keeps executing the stale translation — the documented
  // trade-off), and must record no SMC activity.
  const Workload *W = findWorkload("smc");
  ASSERT_NE(W, nullptr);
  Program P = buildWorkload(*W, W->TestScale);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RuntimeConfig Cfg = RuntimeConfig::full();
  Cfg.MonitorCodeWrites = false;
  Runtime RT(M, Cfg);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(RT.stats().get("smc_invalidations"), 0u);
}

//===----------------------------------------------------------------------===//
// dr_flush_region from a clean call
//===----------------------------------------------------------------------===//

/// Inserts a clean call at the top of the loop block that flushes the
/// region containing that very block for the first few executions — the
/// caller is logically inside the fragment it is flushing, so deletion
/// must defer byte reclamation until control has left it.
class SelfFlushClient : public Client {
public:
  AppPc LoopTag = 0;
  int Flushes = 0;

  void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &Block) override {
    if (Tag != LoopTag)
      return;
    uint32_t Id = RT.registerCleanCall([this](CleanCallContext &Ctx) {
      if (Flushes >= 3)
        return;
      ++Flushes;
      dr_flush_region(&Ctx.RT, LoopTag, 1);
    });
    Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                     {Operand::imm(int64_t(Id), 4)});
    ASSERT_NE(Call, nullptr);
    Block.prepend(Call);
  }
};

TEST(CacheMgmt, FlushRegionFromCleanCallInsideFlushedFragment) {
  Program P = hotLoopProgram(200);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  SelfFlushClient C;
  C.LoopTag = P.symbol("loop");
  RuntimeConfig Cfg = RuntimeConfig::linkDirect(); // keep the block a bb
  Runtime RT(M, Cfg, &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, int(200u * 201u / 2u));
  EXPECT_EQ(C.Flushes, 3);
  EXPECT_GE(RT.stats().get("region_flushes"), 3u);
  EXPECT_GE(RT.stats().get("region_flushed_fragments"), 3u);
}

//===----------------------------------------------------------------------===//
// Per-cache pressure isolation (maybeFlushForSpace regression)
//===----------------------------------------------------------------------===//

TEST(CacheMgmt, PressureInBlockCacheLeavesTraceCacheAlone) {
  // The chain overflows a small block cache while the hot loop lives as a
  // trace. Space pressure in the block cache must flush only the block
  // cache: the trace survives.
  Program P = chainProgram(400, 3);
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RuntimeConfig Cfg = RuntimeConfig::full();
  Cfg.Eviction = EvictionPolicy::FlushAll;
  Cfg.BbCacheSize = 8 * 1024;
  Runtime RT(M, Cfg);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  EXPECT_GE(RT.stats().get("traces_built"), 1u);
  EXPECT_GE(RT.stats().get("cache_flushes_bb"), 1u);
  EXPECT_EQ(RT.stats().get("cache_flushes_trace"), 0u);
}

} // namespace
