//===- tests/vm_semantics_test.cpp - ALU/flag semantics vs reference model ----===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based checks of the interpreter's arithmetic and eflags
/// semantics against an independent C++ reference model, over randomized
/// operand values. The strength-reduction client's legality argument rests
/// entirely on these flag semantics (inc/dec vs add/sub CF behaviour), so
/// they get the heaviest scrutiny.
///
//===----------------------------------------------------------------------===//

#include "isa/Encode.h"
#include "isa/OperandLayout.h"
#include "support/Rng.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace rio;

namespace {

struct Flags {
  bool CF, PF, AF, ZF, SF, OF;
};

Flags flagsOf(const CpuState &Cpu) {
  return {Cpu.flag(EFLAGS_CF), Cpu.flag(EFLAGS_PF), Cpu.flag(EFLAGS_AF),
          Cpu.flag(EFLAGS_ZF), Cpu.flag(EFLAGS_SF), Cpu.flag(EFLAGS_OF)};
}

bool refParity(uint32_t V) {
  unsigned Bits = 0;
  for (int I = 0; I != 8; ++I)
    Bits += (V >> I) & 1;
  return Bits % 2 == 0;
}

/// Reference two-operand ALU model (independent of the interpreter code).
struct Ref {
  uint32_t Result;
  Flags F;
};

Ref refAdd(uint32_t A, uint32_t B, bool Cin) {
  uint64_t Wide = uint64_t(A) + uint64_t(B) + (Cin ? 1 : 0);
  uint32_t R = uint32_t(Wide);
  int64_t Signed = int64_t(int32_t(A)) + int64_t(int32_t(B)) + (Cin ? 1 : 0);
  Ref Out;
  Out.Result = R;
  Out.F = {Wide > 0xFFFFFFFFull,
           refParity(R),
           (((A & 0xF) + (B & 0xF) + (Cin ? 1 : 0)) & 0x10) != 0,
           R == 0,
           int32_t(R) < 0,
           Signed != int64_t(int32_t(R))};
  return Out;
}

Ref refSub(uint32_t A, uint32_t B, bool Bin) {
  uint32_t R = A - B - (Bin ? 1 : 0);
  int64_t Signed = int64_t(int32_t(A)) - int64_t(int32_t(B)) - (Bin ? 1 : 0);
  Ref Out;
  Out.Result = R;
  Out.F = {uint64_t(A) < uint64_t(B) + (Bin ? 1 : 0),
           refParity(R),
           (((A & 0xF) - (B & 0xF) - (Bin ? 1 : 0)) & 0x10) != 0,
           R == 0,
           int32_t(R) < 0,
           Signed != int64_t(int32_t(R))};
  return Out;
}

Ref refLogic(uint32_t R) {
  return {R, {false, refParity(R), false, R == 0, int32_t(R) < 0, false}};
}

/// Executes a single encoded instruction on a fresh machine with eax = A,
/// ebx = B and the carry flag preset; returns final state.
struct ExecOut {
  uint32_t Eax;
  Flags F;
  bool Ok;
};

MachineConfig tinyConfig() {
  MachineConfig MC;
  MC.AppRegionSize = 64 * 1024; // single-instruction tests need no space
  MC.RuntimeRegionSize = 64 * 1024;
  return MC;
}

ExecOut execOne(Opcode Op, uint32_t A, uint32_t B, bool CarryIn) {
  Machine M(tinyConfig());
  CpuState &Cpu = M.cpu();
  Cpu.writeGpr32(REG_EAX, A);
  Cpu.writeGpr32(REG_EBX, B);
  Cpu.setFlag(EFLAGS_CF, CarryIn);

  Operand Ex[2] = {Operand::reg(REG_EAX), Operand::reg(REG_EBX)};
  unsigned NumEx = 2;
  if (Op == OP_inc || Op == OP_dec || Op == OP_neg || Op == OP_not)
    NumEx = 1;
  Operand Srcs[MaxSrcs], Dsts[MaxDsts];
  unsigned NumSrcs = 0, NumDsts = 0;
  EXPECT_TRUE(
      buildCanonicalOperands(Op, Ex, NumEx, Srcs, NumSrcs, Dsts, NumDsts));
  uint8_t Buf[MaxInstrLength];
  int Len = encodeInstr(Op, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000, Buf);
  EXPECT_GT(Len, 0);
  M.mem().writeBlock(0x1000, Buf, unsigned(Len));
  Cpu.Pc = 0x1000;
  StepResult Step = M.step();

  ExecOut Out;
  Out.Ok = Step.Kind == StepKind::Ok;
  Out.Eax = Cpu.readGpr32(REG_EAX);
  Out.F = flagsOf(Cpu);
  return Out;
}

void expectFlags(const Flags &Got, const Flags &Want, const char *What,
                 uint32_t A, uint32_t B) {
  EXPECT_EQ(Got.CF, Want.CF) << What << " CF for " << A << "," << B;
  EXPECT_EQ(Got.PF, Want.PF) << What << " PF for " << A << "," << B;
  EXPECT_EQ(Got.AF, Want.AF) << What << " AF for " << A << "," << B;
  EXPECT_EQ(Got.ZF, Want.ZF) << What << " ZF for " << A << "," << B;
  EXPECT_EQ(Got.SF, Want.SF) << What << " SF for " << A << "," << B;
  EXPECT_EQ(Got.OF, Want.OF) << What << " OF for " << A << "," << B;
}

class AluSemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AluSemantics, MatchesReferenceModel) {
  Rng Rand(GetParam());
  // Boundary values mixed with random ones.
  const uint32_t Interesting[] = {0,          1,          0x7FFFFFFF,
                                  0x80000000, 0xFFFFFFFF, 0xFFFF,
                                  0x10000,    0x7F,       0x80};
  for (int Iter = 0; Iter != 300; ++Iter) {
    uint32_t A = Rand.chance(1, 3)
                     ? Interesting[Rand.nextBelow(std::size(Interesting))]
                     : uint32_t(Rand.next());
    uint32_t B = Rand.chance(1, 3)
                     ? Interesting[Rand.nextBelow(std::size(Interesting))]
                     : uint32_t(Rand.next());
    bool Cin = Rand.chance(1, 2);

    {
      ExecOut Got = execOne(OP_add, A, B, Cin);
      Ref Want = refAdd(A, B, false);
      ASSERT_TRUE(Got.Ok);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "add", A, B);
    }
    {
      ExecOut Got = execOne(OP_adc, A, B, Cin);
      Ref Want = refAdd(A, B, Cin);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "adc", A, B);
    }
    {
      ExecOut Got = execOne(OP_sub, A, B, Cin);
      Ref Want = refSub(A, B, false);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "sub", A, B);
    }
    {
      ExecOut Got = execOne(OP_sbb, A, B, Cin);
      Ref Want = refSub(A, B, Cin);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "sbb", A, B);
    }
    {
      ExecOut Got = execOne(OP_cmp, A, B, Cin);
      Ref Want = refSub(A, B, false);
      EXPECT_EQ(Got.Eax, A) << "cmp must not write its operand";
      expectFlags(Got.F, Want.F, "cmp", A, B);
    }
    {
      ExecOut Got = execOne(OP_and, A, B, Cin);
      Ref Want = refLogic(A & B);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "and", A, B);
    }
    {
      ExecOut Got = execOne(OP_xor, A, B, Cin);
      Ref Want = refLogic(A ^ B);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "xor", A, B);
    }
    {
      // inc: like add 1 for every flag EXCEPT CF, which must be preserved.
      ExecOut Got = execOne(OP_inc, A, B, Cin);
      Ref Want = refAdd(A, 1, false);
      Want.F.CF = Cin; // untouched
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "inc", A, B);
    }
    {
      ExecOut Got = execOne(OP_dec, A, B, Cin);
      Ref Want = refSub(A, 1, false);
      Want.F.CF = Cin; // untouched
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "dec", A, B);
    }
    {
      // neg: sub from zero; CF set iff operand nonzero.
      ExecOut Got = execOne(OP_neg, A, B, Cin);
      Ref Want = refSub(0, A, false);
      EXPECT_EQ(Got.Eax, Want.Result);
      expectFlags(Got.F, Want.F, "neg", A, B);
    }
    {
      // not: no flags at all.
      ExecOut Got = execOne(OP_not, A, B, Cin);
      EXPECT_EQ(Got.Eax, ~A);
      EXPECT_EQ(Got.F.CF, Cin) << "not must not touch flags";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluSemantics,
                         ::testing::Values(11, 22, 33, 44));

/// The inc-vs-add CF distinction observed end to end: this is the paper's
/// Section 4.2 legality condition as a hardware-visible property.
TEST(IncAddDistinction, CarryVisibleDifference) {
  for (bool Cin : {false, true}) {
    ExecOut Inc = execOne(OP_inc, 41, 0, Cin);
    ExecOut Add = execOne(OP_add, 41, 0, Cin); // eax += ebx(=0)... not 1!
    (void)Add;
    EXPECT_EQ(Inc.Eax, 42u);
    EXPECT_EQ(Inc.F.CF, Cin) << "inc preserves CF";
  }
  // add 0xFFFFFFFF + 1 sets CF; inc of 0xFFFFFFFF must not.
  ExecOut IncWrap = execOne(OP_inc, 0xFFFFFFFF, 0, false);
  EXPECT_EQ(IncWrap.Eax, 0u);
  EXPECT_FALSE(IncWrap.F.CF);
  EXPECT_TRUE(IncWrap.F.ZF);
  ExecOut AddWrap = execOne(OP_add, 0xFFFFFFFF, 1, false);
  EXPECT_EQ(AddWrap.Eax, 0u);
  EXPECT_TRUE(AddWrap.F.CF) << "add through zero carries";
}

class ShiftSemantics : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShiftSemantics, MatchesReference) {
  Rng Rand(GetParam());
  for (int Iter = 0; Iter != 200; ++Iter) {
    uint32_t A = uint32_t(Rand.next());
    unsigned Count = unsigned(Rand.nextBelow(32));
    if (Count == 0)
      Count = 1;

    auto Shift = [&](Opcode Op) {
      Machine M(tinyConfig());
      M.cpu().writeGpr32(REG_EAX, A);
      Operand Ex[2] = {Operand::reg(REG_EAX),
                       Operand::imm(int64_t(Count), 1)};
      Operand Srcs[MaxSrcs], Dsts[MaxDsts];
      unsigned NumSrcs = 0, NumDsts = 0;
      buildCanonicalOperands(Op, Ex, 2, Srcs, NumSrcs, Dsts, NumDsts);
      uint8_t Buf[MaxInstrLength];
      int Len = encodeInstr(Op, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000, Buf);
      M.mem().writeBlock(0x1000, Buf, unsigned(Len));
      M.cpu().Pc = 0x1000;
      M.step();
      return std::pair(M.cpu().readGpr32(REG_EAX), flagsOf(M.cpu()));
    };

    auto [ShlR, ShlF] = Shift(OP_shl);
    EXPECT_EQ(ShlR, A << Count);
    EXPECT_EQ(ShlF.CF, ((A >> (32 - Count)) & 1) != 0);
    EXPECT_EQ(ShlF.ZF, (A << Count) == 0);

    auto [ShrR, ShrF] = Shift(OP_shr);
    EXPECT_EQ(ShrR, A >> Count);
    EXPECT_EQ(ShrF.CF, ((A >> (Count - 1)) & 1) != 0);

    auto [SarR, SarF] = Shift(OP_sar);
    EXPECT_EQ(SarR, uint32_t(int32_t(A) >> Count));
    EXPECT_EQ(SarF.CF, ((int32_t(A) >> (Count - 1)) & 1) != 0);
    EXPECT_FALSE(SarF.OF);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShiftSemantics, ::testing::Values(7, 8));

TEST(MulDivSemantics, WideResults) {
  Rng Rand(5150);
  for (int Iter = 0; Iter != 200; ++Iter) {
    uint32_t A = uint32_t(Rand.next());
    uint32_t B = uint32_t(Rand.next()) | 1; // nonzero divisor

    // mul: edx:eax = eax * ebx.
    {
      Machine M(tinyConfig());
      M.cpu().writeGpr32(REG_EAX, A);
      M.cpu().writeGpr32(REG_EBX, B);
      Operand Ex[1] = {Operand::reg(REG_EBX)};
      Operand Srcs[MaxSrcs], Dsts[MaxDsts];
      unsigned NumSrcs = 0, NumDsts = 0;
      buildCanonicalOperands(OP_mul, Ex, 1, Srcs, NumSrcs, Dsts, NumDsts);
      uint8_t Buf[MaxInstrLength];
      int Len = encodeInstr(OP_mul, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000,
                            Buf);
      M.mem().writeBlock(0x1000, Buf, unsigned(Len));
      M.cpu().Pc = 0x1000;
      M.step();
      uint64_t Wide = uint64_t(A) * uint64_t(B);
      EXPECT_EQ(M.cpu().readGpr32(REG_EAX), uint32_t(Wide));
      EXPECT_EQ(M.cpu().readGpr32(REG_EDX), uint32_t(Wide >> 32));
      EXPECT_EQ(M.cpu().flag(EFLAGS_CF), (Wide >> 32) != 0);
    }

    // idiv: edx:eax / ebx with cdq-style sign extension.
    {
      Machine M(tinyConfig());
      int32_t Dividend = int32_t(A);
      int32_t Divisor = int32_t(B);
      M.cpu().writeGpr32(REG_EAX, uint32_t(Dividend));
      M.cpu().writeGpr32(REG_EDX, Dividend < 0 ? 0xFFFFFFFFu : 0u);
      M.cpu().writeGpr32(REG_EBX, uint32_t(Divisor));
      Operand Ex[1] = {Operand::reg(REG_EBX)};
      Operand Srcs[MaxSrcs], Dsts[MaxDsts];
      unsigned NumSrcs = 0, NumDsts = 0;
      buildCanonicalOperands(OP_idiv, Ex, 1, Srcs, NumSrcs, Dsts, NumDsts);
      uint8_t Buf[MaxInstrLength];
      int Len = encodeInstr(OP_idiv, 0, Srcs, NumSrcs, Dsts, NumDsts, 0x1000,
                            Buf);
      M.mem().writeBlock(0x1000, Buf, unsigned(Len));
      M.cpu().Pc = 0x1000;
      M.step();
      ASSERT_EQ(M.status(), RunStatus::Running);
      EXPECT_EQ(int32_t(M.cpu().readGpr32(REG_EAX)), Dividend / Divisor);
      EXPECT_EQ(int32_t(M.cpu().readGpr32(REG_EDX)), Dividend % Divisor);
    }
  }
}

} // namespace
