//===- tests/TestUtil.h - Shared test helpers ------------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#ifndef RIO_TESTS_TESTUTIL_H
#define RIO_TESTS_TESTUTIL_H

#include "asm/Assembler.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

#include <string>

namespace rio::test {

/// Assembles \p Source, failing the test on assembly errors.
inline Program assembleOrDie(const std::string &Source) {
  Program Prog;
  std::string Error;
  bool Ok = assemble(Source, Prog, Error);
  EXPECT_TRUE(Ok) << "assembly failed: " << Error;
  return Prog;
}

/// Result of running a program natively to completion.
struct NativeRun {
  std::string Output;
  int ExitCode = -1;
  RunStatus Status = RunStatus::Running;
  std::string FaultReason;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  CpuState FinalCpu;
};

/// Runs \p Prog natively (no runtime) on a fresh machine until exit/fault.
inline NativeRun runNative(const Program &Prog,
                           const MachineConfig &Config = MachineConfig()) {
  Machine M(Config);
  NativeRun R;
  if (!loadProgram(M, Prog)) {
    R.FaultReason = "program did not fit in the app region";
    R.Status = RunStatus::Faulted;
    return R;
  }
  while (M.status() == RunStatus::Running)
    M.step();
  R.Output = M.output();
  R.ExitCode = M.exitCode();
  R.Status = M.status();
  R.FaultReason = M.faultReason();
  R.Cycles = M.cycles();
  R.Instructions = M.instructionsExecuted();
  R.FinalCpu = M.cpu();
  return R;
}

/// Assembles and runs natively, asserting a clean exit.
inline NativeRun runSource(const std::string &Source) {
  NativeRun R = runNative(assembleOrDie(Source));
  EXPECT_EQ(R.Status, RunStatus::Exited) << "fault: " << R.FaultReason;
  return R;
}

/// A minimal program epilogue: exit(ebx).
inline const char *exitEpilogue() {
  return R"(
    mov eax, 1
    int 0x80
)";
}

} // namespace rio::test

#endif // RIO_TESTS_TESTUTIL_H
