//===- tests/observability_test.cpp - Event tracing / profiling tests -------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime introspection layer: EventTrace ring semantics (wraparound,
/// dropped counting, ordering), deterministic event streams (bit-identical
/// across two runs of the same workload), per-thread attribution under
/// both cache-sharing modes, the cycle-sampling profiler, the client API
/// surface (dr_trace_event / dr_register_event_hook / dr_get_profile), and
/// the Chrome trace export. Also pins the core transparency property: a
/// traced run charges exactly the same simulated cycles as an untraced
/// one.
///
//===----------------------------------------------------------------------===//

#include "api/dr_api.h"
#include "asm/Assembler.h"
#include "core/ThreadedRunner.h"
#include "harness/Experiment.h"
#include "support/EventTrace.h"
#include "support/Histogram.h"
#include "persist/CacheImage.h"
#include "support/Profile.h"
#include "support/OutStream.h"

#include "gtest/gtest.h"

#include <set>
#include <vector>

using namespace rio;

namespace {

//===----------------------------------------------------------------------===//
// Ring buffer semantics
//===----------------------------------------------------------------------===//

TEST(EventTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventTrace(8).capacity(), 8u);
  EXPECT_EQ(EventTrace(9).capacity(), 16u);
  EXPECT_EQ(EventTrace(1).capacity(), 2u);
  EXPECT_EQ(EventTrace(0).capacity(), 2u);
}

TEST(EventTraceRing, WrapsAndCountsDropped) {
  EventTrace T(8);
  for (uint32_t I = 0; I != 20; ++I)
    T.record(/*Cycles=*/100 + I, /*Tid=*/0, TraceEventKind::FragmentBuilt,
             /*Tag=*/I, /*Aux=*/0);
  EXPECT_EQ(T.capacity(), 8u);
  EXPECT_EQ(T.size(), 8u);
  EXPECT_EQ(T.totalRecorded(), 20u);
  EXPECT_EQ(T.droppedEvents(), 12u);
  // Retained events are the 12th..19th recorded, oldest first.
  for (size_t I = 0; I != T.size(); ++I) {
    EXPECT_EQ(T.event(I).Tag, 12 + I);
    EXPECT_EQ(T.event(I).Cycles, 112 + I);
  }
}

TEST(EventTraceRing, NoDropsBeforeWrap) {
  EventTrace T(8);
  for (uint32_t I = 0; I != 5; ++I)
    T.record(I, 0, TraceEventKind::IblHit, I, 0);
  EXPECT_EQ(T.size(), 5u);
  EXPECT_EQ(T.droppedEvents(), 0u);
  EXPECT_EQ(T.event(0).Tag, 0u);
  EXPECT_EQ(T.event(4).Tag, 4u);
}

TEST(EventTraceRing, HookSeesEveryEventAcrossWrapAndDropsStayExact) {
  // A client hook observes the live stream, not the retained window: when
  // the ring wraps underneath it, the hook still sees every recorded event
  // exactly once, and the drop accounting stays exact (retained + dropped
  // == total recorded).
  EventTrace T(8);
  std::vector<uint32_t> Seen;
  T.setHook([&](const TraceEvent &E) { Seen.push_back(E.Tag); });
  constexpr uint32_t Total = 37; // > 4 full ring generations
  for (uint32_t I = 0; I != Total; ++I)
    T.record(/*Cycles=*/I, /*Tid=*/0, TraceEventKind::IblHit, /*Tag=*/I,
             /*Aux=*/0);

  ASSERT_EQ(Seen.size(), size_t(Total));
  for (uint32_t I = 0; I != Total; ++I)
    EXPECT_EQ(Seen[I], I) << "hook missed or reordered an event at " << I;

  EXPECT_EQ(T.totalRecorded(), uint64_t(Total));
  EXPECT_EQ(T.size(), 8u);
  EXPECT_EQ(T.droppedEvents(), uint64_t(Total) - T.size());
  EXPECT_EQ(T.droppedEvents() + T.size(), T.totalRecorded());
  // The retained window is the newest events, oldest first — exactly the
  // tail of what the hook saw.
  for (size_t I = 0; I != T.size(); ++I)
    EXPECT_EQ(T.event(I).Tag, Seen[Total - T.size() + I]);
}

TEST(EventTraceRing, DisabledRecordsNothingThroughMacro) {
  EventTrace T(8);
  T.setEnabled(false);
  RIO_TRACE(&T, 1, 0, TraceEventKind::IblMiss, 0x10, 0);
  EXPECT_EQ(T.totalRecorded(), 0u);
  // A null sink is legal at every call site too.
  RIO_TRACE(static_cast<EventTrace *>(nullptr), 1, 0, TraceEventKind::IblMiss,
            0x10, 0);
  T.setEnabled(true);
  RIO_TRACE(&T, 2, 0, TraceEventKind::IblMiss, 0x11, 0);
  EXPECT_EQ(T.totalRecorded(), 1u);
  EXPECT_EQ(T.event(0).Tag, 0x11u);
}

TEST(EventTraceRing, ClearKeepsLabelsAndKnob) {
  EventTrace T(8);
  uint32_t Id = T.internLabel("phase");
  T.record(1, 0, TraceEventKind::ClientMarker, Id, 42);
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.droppedEvents(), 0u);
  EXPECT_EQ(T.internLabel("phase"), Id) << "labels must survive clear()";
  EXPECT_TRUE(T.enabled());
}

TEST(EventTraceRing, LabelInterningIsStable) {
  EventTrace T;
  uint32_t A = T.internLabel("alpha");
  uint32_t B = T.internLabel("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.internLabel("alpha"), A);
  EXPECT_EQ(T.label(A), "alpha");
  EXPECT_EQ(T.label(B), "beta");
  EXPECT_EQ(T.label(9999), "");
}

//===----------------------------------------------------------------------===//
// Histogram / profiler units
//===----------------------------------------------------------------------===//

TEST(HistogramTest, Log2Bucketing) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  Histogram H;
  H.add(0);
  H.add(3);
  H.add(3);
  H.add(100);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 106u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(7), 1u); // 100 in [64, 127]
}

TEST(SampleProfileTest, OneSamplePerCrossingHoweverFarTheClockJumped) {
  SampleProfile P(100);
  EXPECT_FALSE(P.due(99));
  EXPECT_TRUE(P.due(100));
  P.sample(100, 0x10, false);
  EXPECT_EQ(P.totalSamples(), 1u);
  EXPECT_FALSE(P.due(199));
  // The clock jumps 10 intervals at once: one sample, then re-armed past
  // the current time — not 10 back-to-back samples.
  EXPECT_TRUE(P.due(1100));
  P.sample(1100, 0x20, true);
  EXPECT_EQ(P.totalSamples(), 2u);
  EXPECT_FALSE(P.due(1199));
  EXPECT_TRUE(P.due(1200));
}

TEST(SampleProfileTest, HottestSortsBySamplesThenTag) {
  SampleProfile P(1);
  P.sample(1, 0x30, false);
  P.sample(2, 0x10, false);
  P.sample(3, 0x10, true);
  P.sample(4, 0x20, false);
  std::vector<SampleProfile::Entry> H = P.hottest();
  ASSERT_EQ(H.size(), 3u);
  EXPECT_EQ(H[0].Tag, 0x10u);
  EXPECT_EQ(H[0].Samples, 2u);
  EXPECT_EQ(H[0].TraceSamples, 1u);
  EXPECT_EQ(H[1].Tag, 0x20u) << "ties break by ascending tag";
  EXPECT_EQ(H[2].Tag, 0x30u);
}

//===----------------------------------------------------------------------===//
// Whole-run properties
//===----------------------------------------------------------------------===//

/// Runs \p Name at default scale under full() with the given sinks.
Outcome runTraced(const char *Name, EventTrace *Trace, SampleProfile *Prof) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr) << Name;
  RuntimeConfig Config = RuntimeConfig::full();
  Config.Trace = Trace;
  Config.Profiler = Prof;
  return runUnderRuntime(buildWorkload(*W, 0), Config, ClientKind::None);
}

TEST(Observability, TracingIsInvisibleToTheSimulatedMachine) {
  Outcome Plain = runTraced("crafty", nullptr, nullptr);
  EventTrace Trace;
  SampleProfile Prof(500);
  Outcome Traced = runTraced("crafty", &Trace, &Prof);
  ASSERT_EQ(Plain.Status, RunStatus::Exited);
  ASSERT_EQ(Traced.Status, RunStatus::Exited);
  EXPECT_EQ(Traced.Cycles, Plain.Cycles);
  EXPECT_EQ(Traced.Instructions, Plain.Instructions);
  EXPECT_EQ(Traced.Output, Plain.Output);
  EXPECT_GT(Trace.totalRecorded(), 0u);
  EXPECT_GT(Prof.totalSamples(), 0u);
}

TEST(Observability, EventStreamsAreBitIdenticalAcrossRuns) {
  EventTrace A, B;
  ASSERT_EQ(runTraced("crafty", &A, nullptr).Status, RunStatus::Exited);
  ASSERT_EQ(runTraced("crafty", &B, nullptr).Status, RunStatus::Exited);
  ASSERT_EQ(A.totalRecorded(), B.totalRecorded());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    ASSERT_EQ(A.event(I), B.event(I)) << "event " << I << " diverged";
}

TEST(Observability, SampleEventsCarryExecutingTags) {
  EventTrace Trace;
  SampleProfile Prof(500);
  ASSERT_EQ(runTraced("crafty", &Trace, &Prof).Status, RunStatus::Exited);
  uint64_t SampleEvents = 0;
  Trace.forEach([&](const TraceEvent &E) {
    if (E.kind() == TraceEventKind::Sample)
      ++SampleEvents;
  });
  // Every sample the profiler took is mirrored as a Sample event (the ring
  // is big enough for this workload — nothing dropped).
  ASSERT_EQ(Trace.droppedEvents(), 0u);
  EXPECT_EQ(SampleEvents, Prof.totalSamples());
  // Most samples land in application fragments, not runtime-internal time.
  EXPECT_GT(Prof.totalSamples() - Prof.samplesFor(0), Prof.samplesFor(0));
}

//===----------------------------------------------------------------------===//
// IB inline-cache events
//===----------------------------------------------------------------------===//

/// Skewed indirect dispatch (12/16 slots hit h0) whose hot site crosses the
/// inline threshold, plus a one-shot same-value write into h0's code at the
/// halfway mark — one run exercises chain rewrite, chain hits, and the
/// arm-unlink path when SMC invalidation kills the arm's target.
Program ibDispatchProgram(int Iters) {
  std::string Table = "table: .word";
  for (int I = 0; I != 12; ++I)
    Table += " h0";
  Table += " h1 h1 h2 h3\n";
  std::string Source = R"(
    .entry main
  )" + Table + R"(
    main:
      mov esi, 0
      mov eax, 12345
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jz exit
      cmp edi, )" + std::to_string(Iters / 2) + R"(
      jnz loop
      mov ebx, [h0]
      mov [h0], ebx
      jmp loop
    exit:
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )";
  Program Prog;
  std::string Error;
  EXPECT_TRUE(assemble(Source, Prog, Error)) << Error;
  return Prog;
}

TEST(Observability, IbInlineEventsAreTracedAndFree) {
  Program P = ibDispatchProgram(2500);
  RuntimeConfig Config = RuntimeConfig::linkIndirect();
  Config.IbInline = true;
  Outcome Plain = runUnderRuntime(P, Config, ClientKind::None);

  EventTrace Trace(1u << 18);
  RuntimeConfig TracedConfig = Config;
  TracedConfig.Trace = &Trace;
  Outcome Traced = runUnderRuntime(P, TracedConfig, ClientKind::None);

  ASSERT_EQ(Plain.Status, RunStatus::Exited);
  ASSERT_EQ(Traced.Status, RunStatus::Exited);
  EXPECT_EQ(Traced.Cycles, Plain.Cycles)
      << "tracing the inline-cache events must not perturb the machine";
  EXPECT_EQ(Traced.Instructions, Plain.Instructions);
  EXPECT_EQ(Traced.Output, Plain.Output);

  uint64_t Rewrites = 0, Hits = 0, Unlinks = 0;
  Trace.forEach([&](const TraceEvent &E) {
    switch (E.kind()) {
    case TraceEventKind::IbInlineRewrite:
      ++Rewrites;
      break;
    case TraceEventKind::IbInlineHit:
      ++Hits;
      break;
    case TraceEventKind::IbInlineArmUnlink:
      ++Unlinks;
      break;
    default:
      break;
    }
  });
  ASSERT_EQ(Trace.droppedEvents(), 0u) << "ring sized too small for this run";
  EXPECT_EQ(Rewrites, Traced.Stats.get("ib_inline_rewrites"));
  EXPECT_EQ(Hits, Traced.Stats.get("ib_inline_hits"));
  EXPECT_EQ(Unlinks, Traced.Stats.get("ib_inline_chain_evictions"));
  EXPECT_GT(Rewrites, 0u);
  EXPECT_GT(Hits, 0u);
  EXPECT_GT(Unlinks, 0u) << "the SMC write should have unlinked an arm";
}

//===----------------------------------------------------------------------===//
// Per-thread attribution under both cache-sharing modes
//===----------------------------------------------------------------------===//

/// Three workers all calling one shared function (each via its own worker
/// routine, so only shared_fn is common code). Deterministic.
Program threadedProgram(int Workers, int Iters) {
  std::string S = R"(
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
    main:
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  and esi, 0xFFFFFF\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";
  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov ecx, " + std::to_string(Iters) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  mov eax, ecx\n";
    S += "  call shared_fn\n";
    S += "  add esi, eax\n  and esi, 0xFFFFFF\n";
    S += "  dec ecx\n  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  S += R"(
    shared_fn:
      imul eax, eax, 17
      and eax, 1023
      add eax, 3
      ret
  )";
  Program Prog;
  std::string Error;
  if (!assemble(S, Prog, Error)) {
    ADD_FAILURE() << "assembly failed: " << Error;
    std::abort();
  }
  return Prog;
}

struct ThreadedTraceRun {
  std::set<unsigned> TidsSeen;      ///< over every recorded event
  uint64_t SharedFnBuilt = 0;       ///< FragmentBuilt events for shared_fn
  uint64_t ContextSwaps = 0;        ///< ContextSwapped events
  uint64_t ThreadSchedules = 0;     ///< ThreadScheduled events
};

ThreadedTraceRun runThreadedTraced(CacheSharing Sharing) {
  Program Prog = threadedProgram(3, 2000);
  AppPc SharedFn = Prog.symbol("shared_fn");
  EXPECT_NE(SharedFn, 0u);
  Machine M;
  EXPECT_TRUE(loadProgram(M, Prog));
  EventTrace Trace(1u << 18);
  RuntimeConfig Config = RuntimeConfig::full();
  Config.Sharing = Sharing;
  Config.Trace = &Trace;
  ThreadedRunner Runner(M, Config);
  RunResult R = Runner.run();
  EXPECT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), "3073800\n");

  ThreadedTraceRun Out;
  EXPECT_EQ(Trace.droppedEvents(), 0u);
  Trace.forEach([&](const TraceEvent &E) {
    Out.TidsSeen.insert(E.Tid);
    switch (E.kind()) {
    case TraceEventKind::FragmentBuilt:
      if (E.Tag == SharedFn)
        ++Out.SharedFnBuilt;
      break;
    case TraceEventKind::ContextSwapped:
      ++Out.ContextSwaps;
      break;
    case TraceEventKind::ThreadScheduled:
      ++Out.ThreadSchedules;
      break;
    default:
      break;
    }
  });
  return Out;
}

TEST(Observability, SharedCacheAttributesEventsToEveryThread) {
  ThreadedTraceRun Run = runThreadedTraced(CacheSharing::Shared);
  // Main thread + 3 workers all show up on their own track.
  for (unsigned Tid = 0; Tid != 4; ++Tid)
    EXPECT_TRUE(Run.TidsSeen.count(Tid)) << "tid " << Tid;
  // One shared cache: the common function is built once as a basic block
  // (possibly once more as a trace), never per-thread.
  EXPECT_GE(Run.SharedFnBuilt, 1u);
  EXPECT_LE(Run.SharedFnBuilt, 2u);
  // Shared mode swaps thread contexts inside the one runtime.
  EXPECT_GT(Run.ContextSwaps, 0u);
  EXPECT_GT(Run.ThreadSchedules, 0u);
}

TEST(Observability, PrivateCachesAttributeEventsAndDuplicateSharedCode) {
  ThreadedTraceRun Run = runThreadedTraced(CacheSharing::ThreadPrivate);
  // Private runtimes are labeled with real thread ids, so attribution
  // matches shared mode even though each runtime has a single context.
  for (unsigned Tid = 0; Tid != 4; ++Tid)
    EXPECT_TRUE(Run.TidsSeen.count(Tid)) << "tid " << Tid;
  // Each worker's private cache builds its own copy of the common code.
  EXPECT_GE(Run.SharedFnBuilt, 3u);
  EXPECT_GT(Run.ThreadSchedules, 0u);
}

//===----------------------------------------------------------------------===//
// Client API surface
//===----------------------------------------------------------------------===//

Program counterProgram() {
  Program Prog;
  std::string Error;
  bool Ok = assemble(R"(
    main:
      mov ecx, 2000
    loop:
      dec ecx
      jnz loop
      mov ebx, 0
      mov eax, 1
      int 0x80
  )",
                     Prog, Error);
  EXPECT_TRUE(Ok) << Error;
  return Prog;
}

TEST(Observability, ClientMarkersHooksAndProfileApi) {
  Program Prog = counterProgram();
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  EventTrace Trace;
  SampleProfile Prof(100);
  RuntimeConfig Config = RuntimeConfig::full();
  Config.Trace = &Trace;
  Config.Profiler = &Prof;
  Runtime RT(M, Config, nullptr);
  void *Ctx = &RT;

  // The hook sees every subsequent event synchronously.
  uint64_t Hooked = 0;
  ASSERT_TRUE(dr_register_event_hook(Ctx, [&](const TraceEvent &) {
    ++Hooked;
  }));
  dr_trace_event(Ctx, "before-run", 1);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  dr_trace_event(Ctx, "after-run", 2);
  EXPECT_EQ(Hooked, Trace.totalRecorded());
  EXPECT_GT(Hooked, 2u);

  // Marker events carry the interned label and the client value.
  const TraceEvent &First = Trace.event(0);
  EXPECT_EQ(First.kind(), TraceEventKind::ClientMarker);
  EXPECT_EQ(Trace.label(First.Tag), "before-run");
  EXPECT_EQ(First.Aux, 1u);
  const TraceEvent &Last = Trace.event(Trace.size() - 1);
  EXPECT_EQ(Last.kind(), TraceEventKind::ClientMarker);
  EXPECT_EQ(Trace.label(Last.Tag), "after-run");
  EXPECT_EQ(Last.Aux, 2u);

  // The profile API mirrors the profiler, hottest first.
  std::vector<dr_profile_entry> Profile = dr_get_profile(Ctx);
  ASSERT_FALSE(Profile.empty());
  uint64_t Sum = 0;
  for (size_t I = 0; I != Profile.size(); ++I) {
    Sum += Profile[I].samples;
    if (I) {
      EXPECT_GE(Profile[I - 1].samples, Profile[I].samples);
    }
  }
  EXPECT_EQ(Sum, Prof.totalSamples());
}

TEST(Observability, ApiIsSafeWithoutSinks) {
  Program Prog = counterProgram();
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, RuntimeConfig::full(), nullptr);
  void *Ctx = &RT;
  dr_trace_event(Ctx, "ignored", 0); // no trace attached: no-op
  EXPECT_FALSE(dr_register_event_hook(Ctx, [](const TraceEvent &) {}));
  EXPECT_TRUE(dr_get_profile(Ctx).empty());
  EXPECT_EQ(RT.run().Status, RunStatus::Exited);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(Observability, ChromeExportShapeAndDeterminism) {
  EventTrace Trace;
  SampleProfile Prof(500);
  ASSERT_EQ(runTraced("crafty", &Trace, &Prof).Status, RunStatus::Exited);
  StringOutStream OS;
  writeChromeTrace(OS, Trace);
  const std::string &J = OS.str();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"process_name\""), std::string::npos);
  EXPECT_NE(J.find("\"app thread 0\""), std::string::npos);
  EXPECT_NE(J.find("\"fragment_built\""), std::string::npos);
  EXPECT_NE(J.find("\"sample\""), std::string::npos);
  EXPECT_NE(J.find("\"droppedEvents\""), std::string::npos);
  // Byte-for-byte deterministic for a deterministic stream.
  StringOutStream OS2;
  writeChromeTrace(OS2, Trace);
  EXPECT_EQ(J, OS2.str());
}

//===----------------------------------------------------------------------===//
// Persistent-cache events
//===----------------------------------------------------------------------===//

TEST(Observability, PersistEventsAreTracedAndFree) {
  const Workload *W = findWorkload("crafty");
  ASSERT_NE(W, nullptr);
  Program Prog = buildWorkload(*W, 0);

  // Untraced reference: cold run + save, then warm run from the image.
  auto coldAndSave = [&](EventTrace *Trace, std::vector<uint8_t> &Image) {
    Machine M;
    EXPECT_TRUE(loadProgram(M, Prog));
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Trace = Trace;
    Runtime RT(M, Config);
    RunResult R = RT.run();
    EXPECT_EQ(R.Status, RunStatus::Exited);
    EXPECT_TRUE(persist::CacheCodec::save(RT, Image));
    EXPECT_EQ(RT.stats().get("persist_bytes_written"), Image.size());
    return R.Cycles;
  };
  auto warmRun = [&](EventTrace *Trace, const std::vector<uint8_t> &Image,
                     bool ExpectOk) {
    Machine M;
    EXPECT_TRUE(loadProgram(M, Prog));
    RuntimeConfig Config = RuntimeConfig::full();
    Config.Trace = Trace;
    Runtime RT(M, Config);
    persist::LoadStatus St =
        persist::CacheCodec::load(RT, Image.data(), Image.size());
    EXPECT_EQ(St == persist::LoadStatus::Ok, ExpectOk);
    RunResult R = RT.run();
    EXPECT_EQ(R.Status, RunStatus::Exited);
    return R.Cycles;
  };

  std::vector<uint8_t> Plain, Traced;
  EventTrace ColdTrace(1u << 18), WarmTrace(1u << 18), RejectTrace;

  uint64_t ColdPlain = coldAndSave(nullptr, Plain);
  uint64_t ColdTraced = coldAndSave(&ColdTrace, Traced);
  ASSERT_EQ(Plain, Traced) << "tracing must not perturb the saved image";
  EXPECT_EQ(ColdTraced, ColdPlain)
      << "save is host-side: zero simulated cycles, traced or not";

  uint64_t WarmPlain = warmRun(nullptr, Plain, /*ExpectOk=*/true);
  uint64_t WarmTraced = warmRun(&WarmTrace, Plain, /*ExpectOk=*/true);
  EXPECT_EQ(WarmTraced, WarmPlain);
  EXPECT_LT(WarmPlain, ColdPlain);

  std::vector<uint8_t> Bad = Plain;
  Bad[8] ^= 1; // checksum byte
  uint64_t RejectCycles = warmRun(&RejectTrace, Bad, /*ExpectOk=*/false);
  EXPECT_EQ(RejectCycles, ColdPlain) << "a rejected image is a cold start";

  // The events themselves, with their documented payloads.
  uint64_t Saves = 0, Loads = 0, Rejects = 0;
  ColdTrace.forEach([&](const TraceEvent &E) {
    if (E.kind() == TraceEventKind::PersistSaved) {
      ++Saves;
      EXPECT_GT(E.Tag, 0u) << "Tag carries the fragment count";
      EXPECT_EQ(E.Aux, Plain.size()) << "Aux carries the image bytes";
    }
  });
  WarmTrace.forEach([&](const TraceEvent &E) {
    if (E.kind() == TraceEventKind::PersistLoaded) {
      ++Loads;
      EXPECT_GT(E.Tag, 0u);
      EXPECT_EQ(E.Aux, Plain.size());
    }
  });
  RejectTrace.forEach([&](const TraceEvent &E) {
    if (E.kind() == TraceEventKind::PersistRejected) {
      ++Rejects;
      EXPECT_EQ(E.Tag, uint64_t(persist::LoadStatus::BadChecksum));
    }
  });
  EXPECT_EQ(Saves, 1u);
  EXPECT_EQ(Loads, 1u);
  EXPECT_EQ(Rejects, 1u);
}

TEST(Observability, ProfileReportIsDeterministicAndRanked) {
  EventTrace Trace;
  SampleProfile Prof(500);
  ASSERT_EQ(runTraced("crafty", &Trace, &Prof).Status, RunStatus::Exited);
  StringOutStream OS;
  writeProfileReport(OS, Prof);
  const std::string &R = OS.str();
  EXPECT_NE(R.find("cycle-sampled profile"), std::string::npos);
  EXPECT_NE(R.find("fragment sizes"), std::string::npos);
  EXPECT_NE(R.find("trace lengths"), std::string::npos);
  EXPECT_NE(R.find("eviction ages"), std::string::npos);
  StringOutStream OS2;
  writeProfileReport(OS2, Prof);
  EXPECT_EQ(R, OS2.str());
}

} // namespace
