//===- tests/persist_test.cpp - Persistent code caches -----------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the persistent code caches (src/persist): warm-start
/// equivalence against a cold run, round-trip bit-determinism (save
/// mid-run, restore into a fresh runtime, continue — cycles and statistics
/// must match an uninterrupted run exactly) in both cache-sharing modes,
/// relocation to a different runtime-region base, save/load gating, and
/// loader hardening — truncated, corrupted, mismatched and bit-flipped
/// images must all reject cleanly into a cold start, never crash.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "core/Runtime.h"
#include "persist/CacheImage.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <map>
#include <memory>
#include <set>

using namespace rio;
using namespace rio::persist;
using namespace rio::test;

namespace {

/// A cache+traces workload: a hot loop (promoted to a trace) dispatching
/// through a skewed jump table (exercises the IBL and, when enabled, the
/// indirect-branch inline chains), plus a cold side path so the image
/// holds a mix of linked and unlinked exits. Prints a checksum, so any
/// divergence in restored execution changes the output.
Program dispatchProgram(int Iters) {
  std::string Table = "table: .word h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h0 h0"
                      " h1 h2 h3 h4\n";
  return assembleOrDie(R"(
    .entry main
  )" + Table + R"(
    main:
      mov esi, 0
      mov eax, 12345
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    h4:
      add esi, 65537
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

struct ColdRun {
  std::string Output;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  std::map<std::string, uint64_t> Stats;
  std::vector<uint8_t> Image;
};

/// Runs \p Prog under \p Config to completion on a fresh machine and saves
/// the warmed state.
ColdRun coldRunAndSave(const Program &Prog, const RuntimeConfig &Config) {
  ColdRun R;
  Machine M;
  EXPECT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, Config);
  RunResult Res = RT.run();
  EXPECT_EQ(Res.Status, RunStatus::Exited);
  R.Output = M.output();
  R.Cycles = Res.Cycles;
  R.Instructions = Res.Instructions;
  R.Stats = RT.stats().all();
  EXPECT_TRUE(CacheCodec::save(RT, R.Image));
  return R;
}

/// Occupancy gauges republished on every register/retire, plus the persist
/// counters themselves: excluded from the summed round-trip comparison
/// (gauges are point-in-time, persist counters only exist on one side).
bool isGaugeOrPersistStat(const std::string &Name) {
  return Name.rfind("cache_bb_", 0) == 0 || Name.rfind("cache_trace_", 0) == 0 ||
         Name.rfind("cache_warm_", 0) == 0 || Name == "persist_bytes_written";
}

} // namespace

//===----------------------------------------------------------------------===//
// Warm start
//===----------------------------------------------------------------------===//

TEST(Persist, WarmStartSkipsWarmupAndMatchesOutput) {
  Program Prog = dispatchProgram(4000);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());
  ASSERT_FALSE(Cold.Image.empty());
  EXPECT_GT(Cold.Stats["basic_blocks_built"], 0u);
  EXPECT_GT(Cold.Stats["traces_built"], 0u);

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  RuntimeConfig Config = RuntimeConfig::full();
  Runtime RT(M, Config);
  ASSERT_EQ(CacheCodec::load(RT, Cold.Image.data(), Cold.Image.size()),
            LoadStatus::Ok);
  EXPECT_GT(RT.stats().get("cache_warm_hits"), 0u);

  RunResult R = RT.run();
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(M.output(), Cold.Output);
  // The whole point: no block building, no trace promotion, strictly
  // fewer cycles to the same place.
  EXPECT_EQ(RT.stats().get("basic_blocks_built"), 0u);
  EXPECT_EQ(RT.stats().get("traces_built"), 0u);
  EXPECT_LT(R.Cycles, Cold.Cycles);
}

TEST(Persist, WarmStartCarriesIbInlineState) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.IbInline = true;
  Config.IbInlineThreshold = 64;

  Program Prog = dispatchProgram(4000);
  ColdRun Cold = coldRunAndSave(Prog, Config);
  ASSERT_FALSE(Cold.Image.empty());
  ASSERT_GT(Cold.Stats["ib_inline_rewrites"], 0u);

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  Runtime RT(M, Config);
  ASSERT_EQ(CacheCodec::load(RT, Cold.Image.data(), Cold.Image.size()),
            LoadStatus::Ok);
  RunResult R = RT.run();
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(M.output(), Cold.Output);
  EXPECT_EQ(RT.stats().get("basic_blocks_built"), 0u);
  // The restored chains keep taking hits without being re-installed from
  // scratch (re-profiling may still extend them later in the run).
  EXPECT_GT(RT.stats().get("ib_inline_hits"), 0u);
  EXPECT_LT(R.Cycles, Cold.Cycles);
}

TEST(Persist, WarmStartAtDifferentRegionBase) {
  Program Prog = dispatchProgram(3000);
  RuntimeConfig Config = RuntimeConfig::full();

  // Save from a runtime carved out of a sub-region...
  Machine M1;
  ASSERT_TRUE(loadProgram(M1, Prog));
  RuntimeRegion R1{M1.runtimeBase(), 4u << 20};
  Runtime RT1(M1, Config, nullptr, R1);
  EXPECT_EQ(RT1.run().Status, RunStatus::Exited);
  std::string ColdOut = M1.output();
  std::vector<uint8_t> Image;
  ASSERT_TRUE(CacheCodec::save(RT1, Image));

  // ...and restore it into an equally sized region one megabyte up: every
  // fragment relocates (rel32 links are invariant under the uniform shift;
  // absolute spill-slot operands are rewritten).
  Machine M2;
  ASSERT_TRUE(loadProgram(M2, Prog));
  RuntimeRegion R2{M2.runtimeBase() + (1u << 20), 4u << 20};
  Runtime RT2(M2, Config, nullptr, R2);
  ASSERT_EQ(CacheCodec::load(RT2, Image.data(), Image.size()), LoadStatus::Ok);
  RunResult R = RT2.run();
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(M2.output(), ColdOut);
  EXPECT_EQ(RT2.stats().get("basic_blocks_built"), 0u);
  EXPECT_EQ(RT2.stats().get("traces_built"), 0u);
}

//===----------------------------------------------------------------------===//
// Round-trip determinism
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Prog to a mid-run quiescent point (not finished, not suspended
/// inside the cache, no trace recording), saves, then restores into a
/// brand-new runtime on the same machine and finishes there. The composite
/// run must be bit-identical — cycles, instructions, output, and every
/// summed flow counter — to an uninterrupted run.
void roundTrip(const Program &Prog, RuntimeConfig Config) {
  ColdRun Ref = [&] {
    ColdRun R;
    Machine M;
    EXPECT_TRUE(loadProgram(M, Prog));
    Runtime RT(M, Config);
    RunResult Res = RT.run();
    EXPECT_EQ(Res.Status, RunStatus::Exited);
    R.Output = M.output();
    R.Cycles = Res.Cycles;
    R.Instructions = Res.Instructions;
    R.Stats = RT.stats().all();
    return R;
  }();

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  auto First = std::make_unique<Runtime>(M, Config);
  std::vector<uint8_t> Image;
  std::map<std::string, uint64_t> FirstStats;
  AppPc ResumeTag = 0;
  bool Saved = false;
  // Single-step so that every fragment-exit boundary becomes a suspension;
  // once the runtime holds a trace, the first AtDispatcher suspension
  // outside trace recording is a quiescent point save accepts.
  for (int Tries = 0; Tries != 400000; ++Tries) {
    RunResult Step = First->runFor(1);
    ASSERT_TRUE(Step.QuantumExpired) << "program finished before a save";
    if (First->stats().get("traces_built") == 0)
      continue;
    if (First->activeContext().ResumePoint !=
        ThreadContext::Resume::AtDispatcher)
      continue;
    if (CacheCodec::save(*First, Image)) {
      FirstStats = First->stats().all();
      ResumeTag = First->activeContext().ResumeTag;
      Saved = true;
      break;
    }
  }
  ASSERT_TRUE(Saved);
  ASSERT_NE(ResumeTag, 0u);
  First.reset();

  Runtime Second(M, Config);
  ASSERT_EQ(CacheCodec::load(Second, Image.data(), Image.size()),
            LoadStatus::Ok);
  M.cpu().Pc = ResumeTag; // resume where the first runtime suspended
  RunResult R = Second.run();
  EXPECT_EQ(R.Status, RunStatus::Exited);

  // Save and load are host-side (like mmap'ing a cache file): the machine
  // totals must be exactly what one uninterrupted run produces.
  EXPECT_EQ(M.output(), Ref.Output);
  EXPECT_EQ(R.Cycles, Ref.Cycles);
  EXPECT_EQ(R.Instructions, Ref.Instructions);

  // Flow counters: first-half + second-half == uninterrupted. Occupancy
  // gauges are point-in-time, so only the final values must agree.
  std::map<std::string, uint64_t> SecondStats = Second.stats().all();
  for (const auto &[Name, RefVal] : Ref.Stats) {
    uint64_t A = FirstStats.count(Name) ? FirstStats[Name] : 0;
    uint64_t B = SecondStats.count(Name) ? SecondStats[Name] : 0;
    if (isGaugeOrPersistStat(Name)) {
      bool PersistOnly =
          Name.rfind("cache_warm_", 0) == 0 || Name == "persist_bytes_written";
      if (!PersistOnly) {
        EXPECT_EQ(B, RefVal) << "gauge " << Name;
      }
    } else {
      EXPECT_EQ(A + B, RefVal) << "counter " << Name;
    }
  }
}

} // namespace

TEST(Persist, RoundTripIsBitIdenticalThreadPrivate) {
  roundTrip(dispatchProgram(4000), RuntimeConfig::full());
}

TEST(Persist, RoundTripIsBitIdenticalShared) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.Sharing = CacheSharing::Shared;
  roundTrip(dispatchProgram(4000), Config);
}

TEST(Persist, RoundTripIsBitIdenticalWithIbInline) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.IbInline = true;
  Config.IbInlineThreshold = 64;
  roundTrip(dispatchProgram(4000), Config);
}

//===----------------------------------------------------------------------===//
// Gating
//===----------------------------------------------------------------------===//

TEST(Persist, SaveRefusesMidCacheSuspension) {
  Program Prog = dispatchProgram(4000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  RuntimeConfig Config = RuntimeConfig::full();
  Runtime RT(M, Config);
  // A tiny quantum reliably suspends inside cache code once the hot loop
  // is warm; such a context pins cache bytes save cannot snapshot.
  bool SawRefusal = false;
  for (int I = 0; I != 50 && !SawRefusal; ++I) {
    RunResult Step = RT.runFor(997);
    ASSERT_TRUE(Step.QuantumExpired);
    std::vector<uint8_t> Image;
    if (RT.activeContext().ResumePoint == ThreadContext::Resume::InCache) {
      EXPECT_FALSE(CacheCodec::save(RT, Image));
      SawRefusal = true;
    }
  }
  EXPECT_TRUE(SawRefusal);
}

TEST(Persist, SaveRefusesEmulationMode) {
  Program Prog = dispatchProgram(100);
  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  RuntimeConfig Config = RuntimeConfig::emulate();
  Runtime RT(M, Config);
  EXPECT_EQ(RT.run().Status, RunStatus::Exited);
  std::vector<uint8_t> Image;
  EXPECT_FALSE(CacheCodec::save(RT, Image));
}

TEST(Persist, LoadRequiresColdRuntime) {
  Program Prog = dispatchProgram(2000);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  RuntimeConfig Config = RuntimeConfig::full();
  Runtime RT(M, Config);
  EXPECT_EQ(RT.run().Status, RunStatus::Exited); // now warmed the hard way
  EXPECT_EQ(CacheCodec::load(RT, Cold.Image.data(), Cold.Image.size()),
            LoadStatus::NotCold);
  EXPECT_EQ(RT.stats().get("cache_warm_rejects"), 1u);
}

TEST(Persist, LoadRejectsConfigMismatch) {
  Program Prog = dispatchProgram(2000);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  Machine M;
  ASSERT_TRUE(loadProgram(M, Prog));
  RuntimeConfig Config = RuntimeConfig::full();
  Config.TraceThreshold += 1; // the warmed state depends on this knob
  Runtime RT(M, Config);
  EXPECT_EQ(CacheCodec::load(RT, Cold.Image.data(), Cold.Image.size()),
            LoadStatus::ConfigMismatch);
  // The reject is observable and the runtime stays usable cold.
  EXPECT_EQ(RT.stats().get("cache_warm_rejects"), 1u);
  EXPECT_EQ(RT.stats().get("cache_warm_hits"), 0u);
  EXPECT_EQ(RT.run().Status, RunStatus::Exited);
  EXPECT_EQ(M.output(), Cold.Output);
}

TEST(Persist, LoadRejectsChangedApplication) {
  ColdRun Cold = coldRunAndSave(dispatchProgram(2000), RuntimeConfig::full());

  // Same config, different application code: the per-fragment app-range
  // hash is recomputed over the *current* machine's bytes.
  Program Other = dispatchProgram(2001);
  Machine M;
  ASSERT_TRUE(loadProgram(M, Other));
  RuntimeConfig Config = RuntimeConfig::full();
  Runtime RT(M, Config);
  EXPECT_EQ(CacheCodec::load(RT, Cold.Image.data(), Cold.Image.size()),
            LoadStatus::AppImageMismatch);
  EXPECT_EQ(RT.run().Status, RunStatus::Exited);
}

//===----------------------------------------------------------------------===//
// Loader hardening
//===----------------------------------------------------------------------===//

namespace {

/// Fresh machine + cold runtime for one hostile-load attempt.
struct LoadTarget {
  Machine M;
  RuntimeConfig Config;
  std::unique_ptr<Runtime> RT;
  explicit LoadTarget(const Program &Prog,
                      RuntimeConfig C = RuntimeConfig::full())
      : Config(C) {
    EXPECT_TRUE(loadProgram(M, Prog));
    RT = std::make_unique<Runtime>(M, Config);
  }
  LoadStatus load(const std::vector<uint8_t> &Bytes) {
    return CacheCodec::load(*RT, Bytes.data(), Bytes.size());
  }
};

//===--------------------------------------------------------------------===//
// Surgical image corruption: a mini-walker over the serialized layout so
// tests can mutate one specific record, then re-seal the checksum so the
// structural validators (not the integrity layer) must catch it.
//===--------------------------------------------------------------------===//

uint32_t rd32(const std::vector<uint8_t> &B, size_t Off) {
  return uint32_t(B[Off]) | uint32_t(B[Off + 1]) << 8 |
         uint32_t(B[Off + 2]) << 16 | uint32_t(B[Off + 3]) << 24;
}
void wr32(std::vector<uint8_t> &B, size_t Off, uint32_t V) {
  B[Off] = uint8_t(V);
  B[Off + 1] = uint8_t(V >> 8);
  B[Off + 2] = uint8_t(V >> 16);
  B[Off + 3] = uint8_t(V >> 24);
}

/// Recomputes the header checksum over the (possibly tampered) payload.
std::vector<uint8_t> reseal(std::vector<uint8_t> B) {
  uint64_t H = 14695981039346656037ull;
  for (size_t I = 16; I != B.size(); ++I) {
    H ^= B[I];
    H *= 1099511628211ull;
  }
  for (int I = 0; I != 8; ++I)
    B[8 + I] = uint8_t(H >> (8 * I));
  return B;
}

// Layout constants (file offsets): 16-byte header, 44-byte payload
// preamble, fragment count at 60. Per fragment: 30 fixed bytes (CodeSize
// at +10, StubsSize at +14), then exit records of 34 bytes each (StubOff
// at +14, StubJmpOff at +18, StubJmpLen at +22), app ranges (8), code
// points (9), OSR descriptors (20), trace block tags (4), and the raw
// slot bytes. Table entries are 13 bytes, IB sites 116, shadows 8.
constexpr size_t FragCountOff = 60;
constexpr size_t FragFixedBytes = 30;
constexpr size_t ExitBytes = 34;
constexpr size_t EntryBytes = 13;
constexpr size_t SiteBytes = 116;

/// Walks every fragment record; returns the offset of the table-entry
/// count that follows them. If \p FirstDirectExit is non-null, also
/// reports the offset of the first direct-exit record (0 if none).
size_t skipFragments(const std::vector<uint8_t> &B,
                     size_t *FirstDirectExit = nullptr) {
  if (FirstDirectExit)
    *FirstDirectExit = 0;
  size_t Pos = FragCountOff;
  uint32_t NumFrags = rd32(B, Pos);
  Pos += 4;
  for (uint32_t F = 0; F != NumFrags; ++F) {
    uint32_t CodeSize = rd32(B, Pos + 10);
    uint32_t StubsSize = rd32(B, Pos + 14);
    Pos += FragFixedBytes;
    uint32_t NumExits = rd32(B, Pos);
    Pos += 4;
    for (uint32_t E = 0; E != NumExits; ++E, Pos += ExitBytes)
      if (B[Pos] == 0 && FirstDirectExit && !*FirstDirectExit)
        *FirstDirectExit = Pos;
    Pos += 4 + size_t(rd32(B, Pos)) * 8;  // app ranges
    Pos += 4 + size_t(rd32(B, Pos)) * 9;  // code points
    Pos += 4 + size_t(rd32(B, Pos)) * 20; // OSR descriptors
    Pos += 4 + size_t(rd32(B, Pos)) * 4;  // trace block tags
    Pos += size_t(CodeSize) + StubsSize;  // slot bytes
  }
  return Pos;
}

} // namespace

TEST(Persist, EveryTruncationRejectsCleanly) {
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());
  ASSERT_FALSE(Cold.Image.empty());

  // Checking every prefix length would re-walk the whole image O(n) times;
  // cover all short prefixes plus a spread of interior cuts.
  std::set<size_t> Cuts;
  for (size_t I = 0; I != std::min<size_t>(64, Cold.Image.size()); ++I)
    Cuts.insert(I);
  for (size_t I = 0; I < Cold.Image.size(); I += 37)
    Cuts.insert(I);
  Cuts.insert(Cold.Image.size() - 1);

  Program Target = dispatchProgram(1500);
  for (size_t Cut : Cuts) {
    LoadTarget T(Target);
    std::vector<uint8_t> Trunc(Cold.Image.begin(), Cold.Image.begin() + Cut);
    EXPECT_NE(T.load(Trunc), LoadStatus::Ok) << "cut at " << Cut;
    EXPECT_EQ(T.RT->numFragments(), 0u) << "cut at " << Cut;
  }
  // And the degenerate no-file case (riodyn -cache-load with a bad path).
  LoadTarget T(Target);
  EXPECT_EQ(CacheCodec::load(*T.RT, nullptr, 0), LoadStatus::Truncated);
}

TEST(Persist, HeaderCorruptionIsRejected) {
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  auto Mutated = [&](size_t Off, uint8_t Xor) {
    std::vector<uint8_t> B = Cold.Image;
    B[Off] ^= Xor;
    return B;
  };
  EXPECT_EQ(LoadTarget(Prog).load(Mutated(0, 0xFF)), LoadStatus::BadMagic);
  EXPECT_EQ(LoadTarget(Prog).load(Mutated(4, 0x01)), LoadStatus::BadVersion);
  EXPECT_EQ(LoadTarget(Prog).load(Mutated(8, 0x01)), LoadStatus::BadChecksum);
  // Payload corruption trips the checksum before any record is parsed.
  EXPECT_EQ(LoadTarget(Prog).load(Mutated(Cold.Image.size() / 2, 0x10)),
            LoadStatus::BadChecksum);
}

TEST(Persist, BitFlipFuzzNeverCrashesAndNeverCorrupts) {
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());
  ASSERT_FALSE(Cold.Image.empty());

  Rng R(0x9e3779b97f4a7c15ull);
  for (int Iter = 0; Iter != 200; ++Iter) {
    std::vector<uint8_t> B = Cold.Image;
    unsigned Flips = 1 + unsigned(R.nextBelow(8));
    for (unsigned F = 0; F != Flips; ++F)
      B[size_t(R.nextBelow(B.size()))] ^= uint8_t(1u << R.nextBelow(8));

    LoadTarget T(Prog);
    LoadStatus St = T.load(B);
    if (St == LoadStatus::Ok) {
      // A flip that survives every validation layer must still execute
      // exactly like the saved run (in practice the checksum stops all of
      // these; this branch is the safety net, not the expectation).
      EXPECT_EQ(T.RT->run().Status, RunStatus::Exited);
      EXPECT_EQ(T.M.output(), Cold.Output);
    } else {
      // Rejected: the runtime must be untouched and fully usable cold.
      EXPECT_EQ(T.RT->numFragments(), 0u);
      EXPECT_EQ(T.RT->stats().get("cache_warm_rejects"), 1u);
    }
  }
}

TEST(Persist, TamperedPayloadPastChecksumIsRejected) {
  // Re-seal a tampered payload with a correct checksum so the structural
  // validators (not the checksum) have to catch it. Flipping a byte of a
  // fragment's kind/geometry or link index must never reach apply().
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  Rng R(0xdeadbeefcafef00dull);
  int Rejected = 0, Accepted = 0;
  for (int Iter = 0; Iter != 200; ++Iter) {
    std::vector<uint8_t> B = Cold.Image;
    size_t Off = 16 + size_t(R.nextBelow(B.size() - 16));
    B[Off] ^= uint8_t(1u << R.nextBelow(8));
    B = reseal(std::move(B));

    LoadTarget T(Prog);
    LoadStatus St = T.load(B);
    ASSERT_NE(St, LoadStatus::BadChecksum); // the reseal worked
    if (St == LoadStatus::Ok) {
      // The checksum is the integrity layer and we defeated it on purpose;
      // structural validation only guarantees the *host* stays safe. The
      // guest may compute garbage or fault cleanly — it just must not hang
      // the loader or corrupt the runtime (ASan/UBSan police the rest).
      ++Accepted;
      (void)T.RT->runFor(2000000);
    } else {
      ++Rejected;
      EXPECT_EQ(T.RT->numFragments(), 0u);
    }
  }
  // The structural validators must be doing real work.
  EXPECT_GT(Rejected, 0);
  (void)Accepted;
}

TEST(Persist, StubOffsetWrapIsRejected) {
  // Regression: StubOff just below 2^32 passes `StubOff >= CodeSize`, and a
  // 32-bit `StubJmpOff < StubOff + 4` wrapped to `< 0`, accepting
  // StubJmpOff 0..3 — whose exit-id patch at StubJmpOff - 4 then underflowed
  // to a ~4GB index into the slot-byte vector. Must reject as malformed.
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  size_t Exit = 0;
  skipFragments(Cold.Image, &Exit);
  ASSERT_NE(Exit, 0u) << "workload must produce a direct exit";
  std::vector<uint8_t> B = Cold.Image;
  wr32(B, Exit + 14, 0xFFFFFFFCu); // StubOff
  wr32(B, Exit + 18, 0);           // StubJmpOff
  wr32(B, Exit + 22, 5);           // StubJmpLen
  B = reseal(std::move(B));

  LoadTarget T(Prog);
  EXPECT_EQ(T.load(B), LoadStatus::Malformed);
  EXPECT_EQ(T.RT->numFragments(), 0u);
}

TEST(Persist, DuplicateTableEntriesAreRejected) {
  // apply() would resolve duplicate tags last-wins through Table.slot();
  // parse() must instead reject the non-canonical image outright.
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  size_t EntriesOff = skipFragments(Cold.Image);
  ASSERT_GE(rd32(Cold.Image, EntriesOff), 2u);
  std::vector<uint8_t> B = Cold.Image;
  // Copy record 0 over record 1: every per-record invariant still holds;
  // only the strictly-increasing tag order is violated.
  std::copy(B.begin() + EntriesOff + 4, B.begin() + EntriesOff + 4 + EntryBytes,
            B.begin() + EntriesOff + 4 + EntryBytes);
  B = reseal(std::move(B));

  LoadTarget T(Prog);
  EXPECT_EQ(T.load(B), LoadStatus::Malformed);
  EXPECT_EQ(T.RT->numFragments(), 0u);
}

TEST(Persist, DuplicateIbSitesAreRejected) {
  // Same canonical-order rule for the IB site histograms, where duplicates
  // would restore first-wins (IbProfiles.emplace) — silently ambiguous.
  RuntimeConfig Config = RuntimeConfig::full();
  Config.IbInline = true;
  Config.IbInlineThreshold = 64;
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, Config);

  size_t EntriesOff = skipFragments(Cold.Image);
  size_t SitesOff =
      EntriesOff + 4 + size_t(rd32(Cold.Image, EntriesOff)) * EntryBytes;
  uint32_t NumSites = rd32(Cold.Image, SitesOff);
  ASSERT_GE(NumSites, 1u) << "IB profiling must have recorded the dispatch";
  std::vector<uint8_t> B = Cold.Image;
  // Insert a byte-for-byte copy of the first site record and bump the count.
  std::vector<uint8_t> Rec(B.begin() + SitesOff + 4,
                           B.begin() + SitesOff + 4 + SiteBytes);
  B.insert(B.begin() + SitesOff + 4, Rec.begin(), Rec.end());
  wr32(B, SitesOff, NumSites + 1);
  B = reseal(std::move(B));

  LoadTarget T(Prog, Config);
  EXPECT_EQ(T.load(B), LoadStatus::Malformed);
  EXPECT_EQ(T.RT->numFragments(), 0u);
}

TEST(Persist, OversizedClaimedCountsRejectPromptly) {
  // A sub-100-byte file claiming the maximum fragment count must reject as
  // truncated without the claimed count ever sizing an allocation (the
  // reserve is clamped to what the remaining payload could possibly hold).
  Program Prog = dispatchProgram(1500);
  ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

  std::vector<uint8_t> B(Cold.Image.begin(),
                         Cold.Image.begin() + FragCountOff + 4);
  wr32(B, FragCountOff, 1u << 20); // MaxFragments: passes the count ceiling
  B = reseal(std::move(B));

  LoadTarget T(Prog);
  EXPECT_EQ(T.load(B), LoadStatus::Truncated);
  EXPECT_EQ(T.RT->numFragments(), 0u);
}

//===----------------------------------------------------------------------===//
// File-level API
//===----------------------------------------------------------------------===//

TEST(Persist, DrCacheFileApiRoundTrips) {
  Program Prog = dispatchProgram(2000);
  std::string Path = testing::TempDir() + "persist_api_test.riocache";

  Machine M1;
  ASSERT_TRUE(loadProgram(M1, Prog));
  RuntimeConfig Config = RuntimeConfig::full();
  Runtime RT1(M1, Config);
  EXPECT_EQ(RT1.run().Status, RunStatus::Exited);
  ASSERT_TRUE(dr_cache_save(&RT1, Path.c_str()));

  Machine M2;
  ASSERT_TRUE(loadProgram(M2, Prog));
  Runtime RT2(M2, Config);
  EXPECT_TRUE(dr_cache_image_valid(&RT2, Path.c_str()));
  ASSERT_TRUE(dr_cache_load(&RT2, Path.c_str()));
  EXPECT_EQ(RT2.run().Status, RunStatus::Exited);
  EXPECT_EQ(M2.output(), M1.output());

  Machine M3;
  ASSERT_TRUE(loadProgram(M3, Prog));
  Runtime RT3(M3, Config);
  EXPECT_FALSE(dr_cache_load(&RT3, (Path + ".missing").c_str()));
  EXPECT_FALSE(dr_cache_image_valid(&RT3, (Path + ".missing").c_str()));
  EXPECT_EQ(RT3.stats().get("cache_warm_rejects"), 1u);
  std::remove(Path.c_str());
}

TEST(Persist, WorkloadWarmStartsAreCheaperAndIdentical) {
  for (const char *Name : {"crafty", "vpr", "gap"}) {
    const Workload *W = findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    Program Prog = buildWorkload(*W, 0);
    ColdRun Cold = coldRunAndSave(Prog, RuntimeConfig::full());

    Machine M;
    ASSERT_TRUE(loadProgram(M, Prog));
    RuntimeConfig Config = RuntimeConfig::full();
    Runtime RT(M, Config);
    ASSERT_EQ(CacheCodec::load(RT, Cold.Image.data(), Cold.Image.size()),
              LoadStatus::Ok)
        << Name;
    RunResult R = RT.run();
    EXPECT_EQ(R.Status, RunStatus::Exited) << Name;
    EXPECT_EQ(M.output(), Cold.Output) << Name;
    EXPECT_EQ(RT.stats().get("basic_blocks_built"), 0u) << Name;
    EXPECT_EQ(RT.stats().get("traces_built"), 0u) << Name;
    EXPECT_LT(R.Cycles, Cold.Cycles) << Name;
  }
}
