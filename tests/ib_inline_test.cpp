//===- tests/ib_inline_test.cpp - Adaptive indirect-branch inline caches -----===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the adaptive indirect-branch inline caches (core/IbInline.cpp):
/// chain hit/miss semantics, threshold and skew gating, transparency of the
/// rewritten code, arm re-routing after target eviction / region flush /
/// SMC invalidation in both cache-sharing modes, savef/restf elision
/// safety under a flag-clobbering client, and an on-mode cycle golden.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "core/Runtime.h"
#include "core/ThreadedRunner.h"

using namespace rio;
using namespace rio::test;

namespace {

/// A dispatch loop with one hot indirect-jump site. The index into the
/// 16-entry jump table is uniform, but the *targets* are skewed by table
/// construction: 12 slots route to h0 and one each to h1..h4. With the
/// default 4-way chain one of the five targets always stays outside the
/// chain, so both hits and misses occur. Each handler contributes
/// differently to the checksum, so any dispatch error changes the printed
/// output.
Program skewedDispatchProgram(int Iters) {
  std::string Table = "table: .word";
  for (int I = 0; I != 12; ++I)
    Table += " h0";
  Table += " h1 h2 h3 h4\n";
  return assembleOrDie(R"(
    .entry main
  )" + Table + R"(
    main:
      mov esi, 0
      mov eax, 12345
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    h4:
      add esi, 65537
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

/// Skewed dispatch interleaved with laps of one-shot filler blocks: the
/// fillers overflow a small FIFO block cache every lap, evicting the chain
/// targets out from under a live chain, and the next lap's dispatch loop
/// forces the arms to re-route and relink.
Program pressureDispatchProgram(int Laps, int Iters, int Fillers) {
  std::string Table = "table: .word";
  for (int I = 0; I != 12; ++I)
    Table += " h0";
  Table += " h1 h1 h2 h3\n";
  std::string S = R"(
    .entry main
  )" + Table + R"(
    main:
      mov esi, 0
      mov eax, 12345
      mov ebp, )" + std::to_string(Laps) + R"(
    lap:
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jnz loop
      jmp f0
  )";
  for (int I = 0; I != Fillers; ++I) {
    S += "f" + std::to_string(I) + ":\n";
    S += "  add esi, " + std::to_string((I * 2654435761u >> 10) & 0xFFFF) +
         "\n";
    S += "  and esi, 0xFFFFFF\n";
    S += "  jmp f" + std::to_string(I + 1) + "\n";
  }
  S += "f" + std::to_string(Fillers) + R"(:
      dec ebp
      jnz lap
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )";
  return assembleOrDie(S);
}

/// Like skewedDispatchProgram, but all 16 table slots are distinct
/// handlers: every target carries exactly 1/16 of the arrivals, so the
/// skew gate must refuse to build a chain.
Program uniformDispatchProgram(int Iters) {
  std::string Table = "table: .word";
  std::string Handlers;
  for (int I = 0; I != 16; ++I) {
    Table += " u" + std::to_string(I);
    Handlers += "u" + std::to_string(I) + ":\n  add esi, " +
                std::to_string(1 + I * 3) + "\n  jmp next\n";
  }
  return assembleOrDie(R"(
    .entry main
  )" + Table + "\n" + R"(
    main:
      mov esi, 0
      mov ecx, 0
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      mov eax, ecx
      and eax, 15
      shl eax, 2
      jmp [table+eax]
  )" + Handlers + R"(
    next:
      and esi, 0xFFFFFF
      inc ecx
      dec edi
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

/// A ret-heavy program: one helper returning to three call sites with a
/// skewed site distribution (the `ret` is the profiled indirect site).
Program skewedRetProgram(int Iters) {
  return assembleOrDie(R"(
    .entry main
    main:
      mov esi, 0
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      call work
      add esi, 3
      call work
      add esi, 5
      mov eax, edi
      and eax, 7
      jnz skip
      call work
      add esi, 7
    skip:
      and esi, 0xFFFFFF
      dec edi
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
    work:
      add esi, 11
      ret
  )");
}

/// Skewed dispatch with a mid-run self-modifying write: halfway through
/// the run — long after the site has warmed past any reasonable threshold
/// — the program stores into h0's code bytes (rewriting the same value, so
/// semantics are unchanged). The write must invalidate h0's fragment and
/// re-route any chain arm aimed at it; the second half relinks it.
Program smcDispatchProgram(int Iters) {
  std::string Table = "table: .word";
  for (int I = 0; I != 12; ++I)
    Table += " h0";
  Table += " h1 h1 h2 h3\n";
  return assembleOrDie(R"(
    .entry main
  )" + Table + R"(
    main:
      mov esi, 0
      mov eax, 12345
      mov edi, )" + std::to_string(Iters) + R"(
    loop:
      imul eax, eax, 1103515245
      add eax, 12345
      mov ecx, eax
      shr ecx, 16
      and ecx, 15
      shl ecx, 2
      jmp [table+ecx]
    h0:
      add esi, 1
      jmp next
    h1:
      add esi, 17
      jmp next
    h2:
      add esi, 257
      jmp next
    h3:
      add esi, 4097
      jmp next
    next:
      and esi, 0xFFFFFF
      dec edi
      jz exit
      cmp edi, )" + std::to_string(Iters / 2) + R"(
      jnz loop
      mov ebx, [h0]
      mov [h0], ebx
      jmp loop
    exit:
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
}

/// Two workers, each with its own skewed dispatch loop interleaved with
/// laps of one-shot filler blocks (cache pressure, as in
/// pressureDispatchProgram), joined through flags; the combined checksum
/// prints at the end. Deterministic under any fair schedule.
Program threadedDispatchProgram(int Laps, int Iters, int Fillers) {
  std::string S = R"(
    .entry main
    results: .space 16
    flags:   .space 16
    stacks:  .space 4096
  )";
  for (int W = 0; W != 2; ++W) {
    std::string Id = std::to_string(W);
    S += "table" + Id + ": .word";
    for (int I = 0; I != 12; ++I)
      S += " w" + Id + "h0";
    S += " w" + Id + "h1 w" + Id + "h1 w" + Id + "h2 w" + Id + "h3\n";
  }
  S += R"(
    main:
      mov ebx, worker0
      mov ecx, stacks+2048
      mov eax, 5
      int 0x80
      mov ebx, worker1
      mov ecx, stacks+4096
      mov eax, 5
      int 0x80
    join:
      mov eax, [flags+0]
      test eax, eax
      jz join
    join2:
      mov eax, [flags+4]
      test eax, eax
      jz join2
      mov esi, [results+0]
      add esi, [results+4]
      and esi, 0xFFFFFF
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )";
  for (int W = 0; W != 2; ++W) {
    std::string Id = std::to_string(W);
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov eax, " + std::to_string(777 + W * 1000) + "\n";
    S += "  mov ebp, " + std::to_string(Laps) + "\n";
    S += "w" + Id + "lap:\n";
    S += "  mov edi, " + std::to_string(Iters) + "\n";
    S += "w" + Id + "loop:\n";
    S += "  imul eax, eax, 1103515245\n";
    S += "  add eax, 12345\n";
    S += "  mov ecx, eax\n";
    S += "  shr ecx, 16\n";
    S += "  and ecx, 15\n";
    S += "  shl ecx, 2\n";
    S += "  jmp [table" + Id + "+ecx]\n";
    S += "w" + Id + "h0:\n  add esi, 1\n  jmp w" + Id + "next\n";
    S += "w" + Id + "h1:\n  add esi, 17\n  jmp w" + Id + "next\n";
    S += "w" + Id + "h2:\n  add esi, 257\n  jmp w" + Id + "next\n";
    S += "w" + Id + "h3:\n  add esi, 4097\n  jmp w" + Id + "next\n";
    S += "w" + Id + "next:\n";
    S += "  and esi, 0xFFFFFF\n";
    S += "  dec edi\n";
    S += "  jnz w" + Id + "loop\n";
    S += "  jmp w" + Id + "f0\n";
    for (int I = 0; I != Fillers; ++I) {
      S += "w" + Id + "f" + std::to_string(I) + ":\n";
      S += "  add esi, " +
           std::to_string(((I + W * 7) * 2654435761u >> 10) & 0xFFFF) + "\n";
      S += "  and esi, 0xFFFFFF\n";
      S += "  jmp w" + Id + "f" + std::to_string(I + 1) + "\n";
    }
    S += "w" + Id + "f" + std::to_string(Fillers) + ":\n";
    S += "  dec ebp\n";
    S += "  jnz w" + Id + "lap\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n";
    S += "  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n";
    S += "  int 0x80\n";
  }
  return assembleOrDie(S);
}

struct CachedRun {
  std::string Output;
  uint64_t Cycles = 0;
  StatisticSet Stats;
};

CachedRun runUnder(const Program &P, const RuntimeConfig &Cfg,
                   Client *C = nullptr) {
  Machine M;
  EXPECT_TRUE(loadProgram(M, P));
  CachedRun Out;
  {
    Runtime RT(M, Cfg, C);
    RunResult R = RT.run();
    EXPECT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
    Out.Stats = RT.stats();
  }
  Out.Output = M.output();
  Out.Cycles = M.cycles();
  return Out;
}

RuntimeConfig ibOn(RuntimeConfig Cfg) {
  Cfg.IbInline = true;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Chain semantics: hits, misses, threshold, skew
//===----------------------------------------------------------------------===//

TEST(IbInline, ChainHitAndMissSemantics) {
  Program P = skewedDispatchProgram(3000);
  NativeRun Native = runNative(P);

  CachedRun Off = runUnder(P, RuntimeConfig::linkIndirect());
  CachedRun On = runUnder(P, ibOn(RuntimeConfig::linkIndirect()));

  EXPECT_EQ(Off.Output, Native.Output);
  EXPECT_EQ(On.Output, Native.Output);

  // The hot site crossed the threshold and was rewritten once; hot targets
  // hit the chain, the cold tail still falls through to the IBL.
  EXPECT_EQ(On.Stats.get("ib_inline_rewrites"), 1u);
  EXPECT_GT(On.Stats.get("ib_inline_hits"), 1000u);
  EXPECT_GT(On.Stats.get("ib_inline_misses"), 0u);
  EXPECT_GT(On.Stats.get("ib_inline_spills_collapsed"), 0u);

  // The whole point: linked chain checks are cheaper than IBL lookups.
  EXPECT_LT(On.Cycles, Off.Cycles);
}

TEST(IbInline, RetSitesProfileAndRewrite) {
  Program P = skewedRetProgram(2000);
  NativeRun Native = runNative(P);

  CachedRun On = runUnder(P, ibOn(RuntimeConfig::linkIndirect()));
  EXPECT_EQ(On.Output, Native.Output);
  EXPECT_GE(On.Stats.get("ib_inline_rewrites"), 1u);
  EXPECT_GT(On.Stats.get("ib_inline_hits"), 0u);
}

TEST(IbInline, ThresholdGatesRewriting) {
  Program P = skewedDispatchProgram(3000);
  RuntimeConfig Cfg = ibOn(RuntimeConfig::linkIndirect());
  Cfg.IbInlineThreshold = 1000000; // never reached
  CachedRun Gated = runUnder(P, Cfg);
  CachedRun Off = runUnder(P, RuntimeConfig::linkIndirect());

  EXPECT_EQ(Gated.Stats.get("ib_inline_rewrites"), 0u);
  EXPECT_EQ(Gated.Stats.get("ib_inline_hits"), 0u);
  // Profiling is host-side only: with no rewrite ever triggered, the
  // feature must be simulated-cycle-invisible.
  EXPECT_EQ(Gated.Cycles, Off.Cycles);
  EXPECT_EQ(Gated.Output, Off.Output);
}

TEST(IbInline, UniformDistributionIsNotSkewedEnough) {
  Program P = uniformDispatchProgram(3000);
  NativeRun Native = runNative(P);
  CachedRun On = runUnder(P, ibOn(RuntimeConfig::linkIndirect()));
  EXPECT_EQ(On.Output, Native.Output);
  // 16 equally warm targets: the top four cover a quarter of the
  // arrivals, under the one-third skew bar.
  EXPECT_EQ(On.Stats.get("ib_inline_rewrites"), 0u);
}

TEST(IbInline, FeatureOffIsBitIdentical) {
  Program P = skewedDispatchProgram(2000);
  CachedRun A = runUnder(P, RuntimeConfig::full());
  RuntimeConfig Cfg = RuntimeConfig::full();
  Cfg.IbInline = false; // explicit default
  CachedRun B = runUnder(P, Cfg);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Stats.get("ib_inline_rewrites"), 0u);
}

TEST(IbInline, TransparentUnderTraces) {
  Program P = skewedDispatchProgram(3000);
  NativeRun Native = runNative(P);
  CachedRun On = runUnder(P, ibOn(RuntimeConfig::full()));
  EXPECT_EQ(On.Output, Native.Output);
}

//===----------------------------------------------------------------------===//
// Arm re-routing: eviction, region flush, SMC — both sharing modes
//===----------------------------------------------------------------------===//

TEST(IbInline, ArmReroutesAfterTargetEviction) {
  Program P = pressureDispatchProgram(4, 1000, 80);
  NativeRun Native = runNative(P);

  RuntimeConfig Cfg = ibOn(RuntimeConfig::linkIndirect());
  // The 80-block filler lap (~2.5KB of fragments) overflows a 2KB block
  // cache every lap, evicting the chain targets between dispatch bursts.
  Cfg.BbCacheSize = 2048;
  CachedRun On = runUnder(P, Cfg);

  EXPECT_EQ(On.Output, Native.Output);
  EXPECT_GE(On.Stats.get("ib_inline_rewrites"), 1u);
  // Targets were evicted out from under live chains (arm unlink) and
  // relinked by the IBL probe once rebuilt.
  EXPECT_GE(On.Stats.get("ib_inline_chain_evictions"), 1u);
  EXPECT_GE(On.Stats.get("ib_inline_arm_relinks"), 1u);
}

TEST(IbInline, ArmReroutesAfterRegionFlush) {
  Program P = skewedDispatchProgram(6000);
  NativeRun Native = runNative(P);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, ibOn(RuntimeConfig::linkIndirect()));

  // Run until the hot site has been rewritten, then flush two of the
  // warm targets while suspended. h2 and h3 are used (not h0) because
  // h0's bytes adjoin the dispatch block, whose synthetic-instruction app
  // range conservatively reaches past the site: flushing h0 would take
  // the chain owner with it. The chain holds h0 plus three of the four
  // 1/16 targets, so at least one of h2/h3 always owns an arm.
  RunResult R;
  do {
    R = RT.runFor(2000);
    ASSERT_EQ(M.status(), RunStatus::Running) << R.FaultReason;
  } while (RT.stats().get("ib_inline_rewrites") == 0 &&
           M.instructionsExecuted() < 2000000);
  ASSERT_GE(RT.stats().get("ib_inline_rewrites"), 1u);

  AppPc H2 = P.symbol("h2");
  AppPc H3 = P.symbol("h3");
  ASSERT_NE(H2, 0u);
  ASSERT_NE(H3, 0u);
  RT.flushRegion(H2, 4);
  RT.flushRegion(H3, 4);
  uint64_t Unlinks = RT.stats().get("ib_inline_chain_evictions");
  EXPECT_GE(Unlinks, 1u);

  R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output);
  // The flushed targets were rebuilt on their next arrivals and the arms
  // patched direct again by the IBL-hit probe.
  EXPECT_GE(RT.stats().get("ib_inline_arm_relinks"), 1u);
}

TEST(IbInline, ArmReroutesAfterSmcInvalidation) {
  Program P = smcDispatchProgram(2500);
  NativeRun Native = runNative(P);

  CachedRun On = runUnder(P, ibOn(RuntimeConfig::linkIndirect()));
  EXPECT_EQ(On.Output, Native.Output);
  EXPECT_GE(On.Stats.get("ib_inline_rewrites"), 1u);
  EXPECT_GE(On.Stats.get("smc_invalidations"), 1u);
  EXPECT_GE(On.Stats.get("ib_inline_chain_evictions"), 1u);
  EXPECT_GE(On.Stats.get("ib_inline_arm_relinks"), 1u);
}

TEST(IbInline, ThreadPrivateModeReroutesUnderPressure) {
  Program P = threadedDispatchProgram(3, 800, 60);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RuntimeConfig Cfg = ibOn(RuntimeConfig::linkIndirect());
  Cfg.BbCacheSize = 2048;
  Cfg.MaxThreads = 4;
  ThreadedRunner Runner(M, Cfg);
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.output());

  uint64_t Rewrites = 0, Evictions = 0, Relinks = 0;
  for (unsigned Tid = 0; Tid != 8; ++Tid)
    if (Runtime *RT = Runner.runtimeFor(Tid)) {
      Rewrites += RT->stats().get("ib_inline_rewrites");
      Evictions += RT->stats().get("ib_inline_chain_evictions");
      Relinks += RT->stats().get("ib_inline_arm_relinks");
    }
  EXPECT_GE(Rewrites, 1u);
  EXPECT_GE(Evictions, 1u);
  EXPECT_GE(Relinks, 1u);
}

TEST(IbInline, SharedModeReroutesUnderPressure) {
  Program P = threadedDispatchProgram(3, 800, 60);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  RuntimeConfig Cfg = ibOn(RuntimeConfig::linkIndirect());
  Cfg.Sharing = CacheSharing::Shared;
  Cfg.BbCacheSize = 4096;
  ThreadedRunner Runner(M, Cfg);
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.output());

  Runtime *RT = Runner.runtimeFor(0);
  ASSERT_NE(RT, nullptr);
  EXPECT_GE(RT->stats().get("ib_inline_rewrites"), 1u);
  EXPECT_GE(RT->stats().get("ib_inline_chain_evictions"), 1u);
  EXPECT_GE(RT->stats().get("ib_inline_arm_relinks"), 1u);
}

//===----------------------------------------------------------------------===//
// savef/restf elision under rewriting
//===----------------------------------------------------------------------===//

/// Instruments every block with a flags-clobbering counter bump bracketed
/// by savef/restf — the conservative pattern the rewrite's liveness pass
/// is allowed to clean up exactly when the flags are provably dead.
class FlagClobberClient : public Client {
public:
  void onBasicBlock(Runtime &RT, AppPc, InstrList &IL) override {
    // The API mirror of RuntimeConfig::IbInline; a client that inlines
    // dispatch itself would branch on this.
    EXPECT_TRUE(dr_ib_inlining_enabled(&RT));
    Arena &A = IL.arena();
    uint32_t Flags = RT.slots().ScratchSlots + 0;
    uint32_t Counter = RT.slots().ScratchSlots + 4;
    Operand Ecx = Operand::reg(REG_ECX);
    Operand Spill = Operand::memAbs(RT.slots().SpillSlots + 12, 4);
    Instr *Seq[7] = {
        Instr::createSynth(A, OP_savef, {Operand::memAbs(Flags, 4)}),
        Instr::createSynth(A, OP_mov, {Spill, Ecx}),
        Instr::createSynth(A, OP_mov, {Ecx, Operand::memAbs(Counter, 4)}),
        Instr::createSynth(A, OP_add, {Ecx, Operand::imm(1, 4)}),
        Instr::createSynth(A, OP_mov, {Operand::memAbs(Counter, 4), Ecx}),
        Instr::createSynth(A, OP_mov, {Ecx, Spill}),
        Instr::createSynth(A, OP_restf, {Operand::memAbs(Flags, 4)}),
    };
    Instr *First = IL.first();
    for (Instr *I : Seq) {
      ASSERT_NE(I, nullptr);
      if (First)
        IL.insertBefore(First, I);
      else
        IL.append(I);
    }
  }
};

TEST(IbInline, SavefRestfElisionIsFlagSafe) {
  // Flags are genuinely live across block boundaries here: `jz` ends a
  // block and the following `jb` (a new block's first instruction) still
  // reads the same cmp's carry — the instrumentation's flag save/restore
  // is load-bearing, and the rewrite must keep it.
  Program P = assembleOrDie(R"(
    .entry main
    table: .word h0 h0 h0 h1
    main:
      mov esi, 0
      mov edi, 2000
    loop:
      mov eax, edi
      and eax, 3
      shl eax, 2
      jmp [table+eax]
    h0:
      add esi, 2
      jmp check
    h1:
      add esi, 9
      jmp check
    check:
      cmp esi, 1000000
      jz done
      jb small
      sub esi, 999983
    small:
      dec edi
      jnz loop
    done:
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  NativeRun Native = runNative(P);

  FlagClobberClient C;
  RuntimeConfig Cfg = ibOn(RuntimeConfig::linkIndirect());
  Cfg.IbInlineThreshold = 32;
  CachedRun On = runUnder(P, Cfg, &C);
  EXPECT_EQ(On.Output, Native.Output);
  EXPECT_GE(On.Stats.get("ib_inline_rewrites"), 1u);
}

TEST(IbInline, SavefRestfPairsElideWhenFlagsDead) {
  // In the dispatch block the instrumented savef/restf is followed by an
  // `imul/add/and` run that rewrites every flag before any branch reads
  // them — the rewrite's liveness pass must delete the pair.
  Program P = skewedDispatchProgram(3000);
  NativeRun Native = runNative(P);

  FlagClobberClient C;
  CachedRun On = runUnder(P, ibOn(RuntimeConfig::linkIndirect()), &C);
  EXPECT_EQ(On.Output, Native.Output);
  EXPECT_GE(On.Stats.get("ib_inline_rewrites"), 1u);
  EXPECT_GE(On.Stats.get("ib_inline_flag_pairs_elided"), 1u);
}

//===----------------------------------------------------------------------===//
// On-mode cycle golden
//===----------------------------------------------------------------------===//

TEST(IbInline, OnModeCycleGolden) {
  // Companion to stats_parity_test's feature-off goldens: pins the
  // on-mode cost model so chain costs cannot drift silently. Update only
  // for intentional cost-model or codegen changes.
  Program P = skewedDispatchProgram(3000);
  CachedRun On = runUnder(P, ibOn(RuntimeConfig::linkIndirect()));
  CachedRun Off = runUnder(P, RuntimeConfig::linkIndirect());
  EXPECT_EQ(On.Output, Off.Output);
  EXPECT_EQ(On.Stats.get("ib_inline_rewrites"), 1u);

  const uint64_t GoldenOnCycles = 155626;
  const uint64_t GoldenOffCycles = 168648;
  EXPECT_EQ(On.Cycles, GoldenOnCycles);
  EXPECT_EQ(Off.Cycles, GoldenOffCycles);
  EXPECT_EQ(On.Stats.get("ib_inline_hits"), 2757u);
  EXPECT_EQ(On.Stats.get("ib_inline_misses"), 179u);
}

} // namespace
