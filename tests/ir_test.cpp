//===- tests/ir_test.cpp - Instr/InstrList/Emit/Analysis tests ----------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "ir/Build.h"
#include "ir/Emit.h"
#include "ir/Print.h"
#include "isa/Encode.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace rio;

namespace {

/// Encodes a small instruction into a buffer for lifting tests.
unsigned emit(uint8_t *Buf, Opcode Op, std::initializer_list<Operand> Ex,
              AppPc Pc) {
  Operand Srcs[MaxSrcs], Dsts[MaxDsts];
  unsigned NumSrcs = 0, NumDsts = 0;
  Operand ExArr[MaxExplicit];
  unsigned NumEx = 0;
  for (const Operand &O : Ex)
    ExArr[NumEx++] = O;
  EXPECT_TRUE(
      buildCanonicalOperands(Op, ExArr, NumEx, Srcs, NumSrcs, Dsts, NumDsts));
  int Len = encodeInstr(Op, 0, Srcs, NumSrcs, Dsts, NumDsts, Pc, Buf);
  EXPECT_GT(Len, 0);
  return unsigned(Len);
}

TEST(InstrLevels, AutomaticUpgrades) {
  // mov eax, [esi+0xc] raw bytes.
  uint8_t Buf[MaxInstrLength];
  unsigned Len = emit(Buf, OP_mov,
                      {Operand::reg(REG_EAX), Operand::mem(REG_ESI, 0xC, 4)},
                      0x1000);
  Arena A;
  Instr *I = Instr::createRaw(A, Buf, Len, 0x1000);
  EXPECT_EQ(I->level(), Instr::Level::Raw);

  // Asking for the opcode performs a Level 2 decode.
  EXPECT_EQ(I->getOpcode(), OP_mov);
  EXPECT_EQ(I->level(), Instr::Level::OpcodeKnown);
  EXPECT_EQ(I->getEflags(), 0u);

  // Asking for operands performs a full decode; raw bits stay valid.
  EXPECT_EQ(I->numSrcs(), 1u);
  EXPECT_TRUE(I->getSrc(0).isMem());
  EXPECT_EQ(I->level(), Instr::Level::Decoded);
  EXPECT_TRUE(I->rawBitsValid());

  // Mutation invalidates the raw bits: Level 4.
  I->setSrc(0, Operand::mem(REG_ESI, 0x10, 4));
  EXPECT_EQ(I->level(), Instr::Level::Synth);
  EXPECT_FALSE(I->rawBitsValid());

  // The re-encoded form reflects the new operand.
  uint8_t Out[MaxInstrLength];
  int NewLen = I->encode(0x1000, Out, true);
  ASSERT_GT(NewLen, 0);
  DecodedInstr DI;
  ASSERT_TRUE(decodeInstr(Out, unsigned(NewLen), 0x1000, DI));
  EXPECT_EQ(DI.Srcs[0].getDisp(), 0x10);
}

TEST(InstrLevels, SkippingLevelsCostsOneSwitch) {
  uint8_t Buf[MaxInstrLength];
  unsigned Len = emit(Buf, OP_add,
                      {Operand::reg(REG_EAX), Operand::imm(5, 4)}, 0);
  Arena A;
  Instr *I = Instr::createRaw(A, Buf, Len, 0);
  // Jump straight from Level 1 to Level 3.
  EXPECT_EQ(I->numSrcs(), 2u);
  EXPECT_EQ(I->level(), Instr::Level::Decoded);
}

TEST(InstrLevels, SynthRefinesShiftFlags) {
  Arena A;
  Instr *ByImm = Instr::createSynth(
      A, OP_shl, {Operand::reg(REG_EAX), Operand::imm(3, 1)});
  ASSERT_NE(ByImm, nullptr);
  EXPECT_EQ(ByImm->getEflags(), uint32_t(EFLAGS_WRITE_ARITH));
  Instr *ByCl = Instr::createSynth(
      A, OP_shl, {Operand::reg(REG_EAX), Operand::reg(REG_CL)});
  ASSERT_NE(ByCl, nullptr);
  EXPECT_EQ(ByCl->getEflags(), uint32_t(EFLAGS_READ_ALL | EFLAGS_WRITE_ALL));
}

TEST(InstrList, BasicMutation) {
  Arena A;
  InstrList IL(A);
  Instr *I1 = Instr::createSynth(A, OP_nop, {});
  Instr *I2 = Instr::createSynth(A, OP_nop, {});
  Instr *I3 = Instr::createSynth(A, OP_nop, {});
  IL.append(I1);
  IL.append(I3);
  IL.insertAfter(I1, I2);
  EXPECT_EQ(IL.size(), 3u);
  EXPECT_EQ(IL.first(), I1);
  EXPECT_EQ(I1->next(), I2);
  EXPECT_EQ(I2->next(), I3);
  EXPECT_EQ(IL.last(), I3);
  EXPECT_EQ(I3->prev(), I2);

  IL.remove(I2);
  EXPECT_EQ(IL.size(), 2u);
  EXPECT_EQ(I1->next(), I3);

  Instr *I4 = Instr::createSynth(A, OP_cdq, {});
  IL.replace(I1, I4);
  EXPECT_EQ(IL.first(), I4);
  EXPECT_EQ(IL.size(), 2u);

  InstrList Other(A);
  Other.append(Instr::createSynth(A, OP_nop, {}));
  IL.splice(Other);
  EXPECT_EQ(IL.size(), 3u);
  EXPECT_TRUE(Other.empty());
}

TEST(Emit, LabelsResolveForwardAndBackward) {
  Arena A;
  InstrList IL(A);
  // top: dec eax ; jnz top ; jmp end ; <nop> ; end:
  Instr *Top = Instr::createLabel(A);
  IL.append(Top);
  IL.append(Instr::createSynth(A, OP_dec, {Operand::reg(REG_EAX)}));
  Instr *Jnz = Instr::createSynth(A, OP_jnz, {Operand::pc(0)});
  Jnz->setBranchTargetLabel(Top);
  IL.append(Jnz);
  Instr *End = Instr::createLabel(A);
  Instr *Jmp = Instr::createSynth(A, OP_jmp, {Operand::pc(0)});
  Jmp->setBranchTargetLabel(End);
  IL.append(Jmp);
  IL.append(Instr::createSynth(A, OP_nop, {}));
  IL.append(End);

  uint8_t Out[256];
  EmitResult Res;
  ASSERT_TRUE(emitInstrList(IL, 0x2000, Out, sizeof(Out), true, Res));

  // Verify by decoding: the jnz targets 0x2000 and the jmp targets the end.
  DecodedInstr DI;
  unsigned JnzOff = Res.offsetOf(Jnz);
  ASSERT_TRUE(decodeInstr(Out + JnzOff, Res.TotalSize - JnzOff,
                          0x2000 + JnzOff, DI));
  EXPECT_EQ(DI.Op, OP_jnz);
  EXPECT_EQ(DI.Srcs[0].getPc(), 0x2000u);
  unsigned JmpOff = Res.offsetOf(Jmp);
  ASSERT_TRUE(decodeInstr(Out + JmpOff, Res.TotalSize - JmpOff,
                          0x2000 + JmpOff, DI));
  EXPECT_EQ(DI.Op, OP_jmp);
  EXPECT_EQ(DI.Srcs[0].getPc(), 0x2000u + Res.TotalSize);
}

TEST(Emit, ShortBranchPolicy) {
  Arena A;
  InstrList IL(A);
  Instr *End = Instr::createLabel(A);
  Instr *Jmp = Instr::createSynth(A, OP_jmp, {Operand::pc(0)});
  Jmp->setBranchTargetLabel(End);
  IL.append(Jmp);
  IL.append(Instr::createSynth(A, OP_nop, {}));
  IL.append(End);

  EmitResult Short, Near;
  ASSERT_TRUE(emitInstrList(IL, 0x1000, nullptr, 0, true, Short));
  ASSERT_TRUE(emitInstrList(IL, 0x1000, nullptr, 0, false, Near));
  EXPECT_LT(Short.TotalSize, Near.TotalSize); // rel8 vs forced rel32
}

TEST(Emit, RelocatedRawCtiIsReencoded) {
  // A direct branch lifted from one address and emitted at another must be
  // re-encoded so its target stays put.
  uint8_t Buf[MaxInstrLength];
  unsigned Len = emit(Buf, OP_jmp, {Operand::pc(0x1100)}, 0x1000);
  Arena A;
  DecodedInstr DI;
  ASSERT_TRUE(decodeInstr(Buf, Len, 0x1000, DI));
  InstrList IL(A);
  IL.append(Instr::createDecoded(A, DI, Buf, 0x1000));

  uint8_t Out[64];
  EmitResult Res;
  ASSERT_TRUE(emitInstrList(IL, 0x5000, Out, sizeof(Out), false, Res));
  DecodedInstr DI2;
  ASSERT_TRUE(decodeInstr(Out, Res.TotalSize, 0x5000, DI2));
  EXPECT_EQ(DI2.Srcs[0].getPc(), 0x1100u) << "target must survive relocation";
}

TEST(Emit, JecxzOverLongGapFails) {
  // jecxz to a label more than 127 bytes away cannot encode.
  Arena A;
  InstrList IL(A);
  Instr *End = Instr::createLabel(A);
  Instr *J = Instr::createSynth(A, OP_jecxz, {Operand::pc(0)});
  J->setBranchTargetLabel(End);
  IL.append(J);
  for (int K = 0; K != 40; ++K) // 40 x 5-byte instructions = 200 bytes
    IL.append(Instr::createSynth(
        A, OP_mov, {Operand::reg(REG_EAX), Operand::imm(K, 4)}));
  IL.append(End);
  EmitResult Res;
  EXPECT_FALSE(emitInstrList(IL, 0x1000, nullptr, 0, false, Res));
}

TEST(Build, BundleZeroShape) {
  // A block of straight-line code lifts to exactly bundle + CTI.
  uint8_t Code[64];
  unsigned Off = 0;
  Off += emit(Code + Off, OP_add, {Operand::reg(REG_EAX), Operand::imm(1, 4)},
              0x1000 + Off);
  Off += emit(Code + Off, OP_sub, {Operand::reg(REG_EBX), Operand::imm(2, 4)},
              0x1000 + Off);
  Off += emit(Code + Off, OP_jmp, {Operand::pc(0x1000)}, 0x1000 + Off);

  Arena A;
  InstrList IL(A);
  ASSERT_TRUE(liftBlock(IL, Code, Off, 0x1000, 0x1000, 64,
                        LiftLevel::Bundle0));
  EXPECT_EQ(IL.size(), 2u);
  EXPECT_TRUE(IL.first()->isBundle());
  EXPECT_TRUE(IL.last()->isCti());
  EXPECT_EQ(IL.last()->level(), Instr::Level::Decoded);
}

TEST(Build, ScanStopsAtSyscall) {
  uint8_t Code[64];
  unsigned Off = 0;
  Off += emit(Code + Off, OP_mov, {Operand::reg(REG_EAX), Operand::imm(1, 4)},
              0x1000 + Off);
  Off += emit(Code + Off, OP_int, {Operand::imm(0x80, 1)}, 0x1000 + Off);
  Off += emit(Code + Off, OP_nop, {}, 0x1000 + Off);

  BlockScan Scan;
  ASSERT_TRUE(scanBlock(Code, Off, 0x1000, 0x1000, 64, Scan));
  EXPECT_TRUE(Scan.EndsInSyscall);
  EXPECT_FALSE(Scan.EndsInCti);
  EXPECT_EQ(Scan.NumInstrs, 2u);
}

TEST(Analysis, FlagsLiveness) {
  Arena A;
  InstrList IL(A);
  // add (writes all) -> flags dead before it.
  IL.append(Instr::createSynth(A, OP_mov,
                               {Operand::reg(REG_EAX), Operand::imm(1, 4)}));
  Instr *Add = Instr::createSynth(
      A, OP_add, {Operand::reg(REG_EAX), Operand::imm(1, 4)});
  IL.append(Add);
  EXPECT_FALSE(flagsLiveAt(IL.first()));

  // jz reads ZF before anything writes it -> live.
  InstrList IL2(A);
  IL2.append(Instr::createSynth(A, OP_mov,
                                {Operand::reg(REG_EAX), Operand::imm(1, 4)}));
  Instr *Jz = Instr::createSynth(A, OP_jz, {Operand::pc(0x1000)});
  IL2.append(Jz);
  EXPECT_TRUE(flagsLiveAt(IL2.first()));

  // inc writes everything except CF; a later jb still sees the old CF.
  InstrList IL3(A);
  IL3.append(Instr::createSynth(A, OP_inc, {Operand::reg(REG_EAX)}));
  IL3.append(Instr::createSynth(A, OP_jb, {Operand::pc(0x1000)}));
  EXPECT_TRUE(flagsLiveAt(IL3.first()));

  // Empty continuation: conservative.
  InstrList IL4(A);
  EXPECT_TRUE(flagsLiveAt(IL4.first()));
}

TEST(Analysis, RegisterLiveness) {
  Arena A;
  InstrList IL(A);
  // mov ebx, 1 fully rewrites ebx -> ebx dead at entry.
  IL.append(Instr::createSynth(A, OP_mov,
                               {Operand::reg(REG_EBX), Operand::imm(1, 4)}));
  EXPECT_FALSE(registerLiveAt(IL.first(), REG_EBX));
  // ...but eax is read by nothing and never written: conservative live at
  // the end of the list.
  EXPECT_TRUE(registerLiveAt(IL.first(), REG_EAX));

  InstrList IL2(A);
  // add eax, ebx reads ebx -> live.
  IL2.append(Instr::createSynth(
      A, OP_add, {Operand::reg(REG_EAX), Operand::reg(REG_EBX)}));
  EXPECT_TRUE(registerLiveAt(IL2.first(), REG_EBX));

  InstrList IL3(A);
  // Address computation reads the register too.
  IL3.append(Instr::createSynth(
      A, OP_mov, {Operand::mem(REG_EBX, 0, 4), Operand::imm(7, 4)}));
  EXPECT_TRUE(registerLiveAt(IL3.first(), REG_EBX));
}

TEST(Print, RendersOperandsAndEflags) {
  Arena A;
  Instr *I = Instr::createSynth(
      A, OP_add, {Operand::reg(REG_EAX), Operand::mem(REG_ESI, 0xC, 4)});
  ASSERT_NE(I, nullptr);
  std::string S = instrToString(*I);
  EXPECT_NE(S.find("add"), std::string::npos);
  EXPECT_NE(S.find("0xc(%esi)"), std::string::npos);
  EXPECT_NE(S.find("WCPAZSO"), std::string::npos);
  std::string AsmText = instrToAsm(*I);
  EXPECT_EQ(AsmText, "add %eax, 0xc(%esi)");
}

} // namespace

namespace {

TEST(Emit, FixpointStressManyLabels) {
  // A pathological layout: alternating short-range and far branches over
  // many labels; the emitter's shrink-only fixpoint must converge and
  // produce a consistent, decodable layout.
  Arena A;
  InstrList IL(A);
  std::vector<Instr *> Labels;
  for (int K = 0; K != 40; ++K)
    Labels.push_back(Instr::createLabel(A));

  for (int K = 0; K != 40; ++K) {
    IL.append(Labels[size_t(K)]);
    // A branch to a label ~6 slots ahead (short once settled)...
    if (K + 6 < 40) {
      Instr *J = Instr::createSynth(A, OP_jz, {Operand::pc(0)});
      J->setBranchTargetLabel(Labels[size_t(K + 6)]);
      IL.append(J);
    }
    // ...a branch far backward (always rel32 when K is large)...
    if (K > 0) {
      Instr *J = Instr::createSynth(A, OP_jnz, {Operand::pc(0)});
      J->setBranchTargetLabel(Labels[0]);
      IL.append(J);
    }
    // ...and some filler.
    IL.append(Instr::createSynth(
        A, OP_mov, {Operand::reg(REG_EAX), Operand::imm(K, 4)}));
  }
  uint8_t Out[4096];
  EmitResult Res;
  ASSERT_TRUE(emitInstrList(IL, 0x4000, Out, sizeof(Out), true, Res));

  // Every emitted instruction decodes, and every branch lands exactly on
  // an instruction boundary.
  std::set<unsigned> Boundaries;
  unsigned Off = 0;
  while (Off < Res.TotalSize) {
    Boundaries.insert(Off);
    int Len = decodeLength(Out + Off, Res.TotalSize - Off);
    ASSERT_GT(Len, 0) << "undecodable byte at offset " << Off;
    Off += unsigned(Len);
  }
  Off = 0;
  while (Off < Res.TotalSize) {
    DecodedInstr DI;
    ASSERT_TRUE(decodeInstr(Out + Off, Res.TotalSize - Off, 0x4000 + Off, DI));
    if (opcodeIsCondBranch(DI.Op) || DI.Op == OP_jmp) {
      unsigned TargetOff = DI.Srcs[0].getPc() - 0x4000;
      EXPECT_TRUE(Boundaries.count(TargetOff))
          << "branch at " << Off << " targets mid-instruction";
    }
    Off += DI.Length;
  }
}

} // namespace

namespace {

/// Every encodable opcode renders with its own mnemonic in both printing
/// styles (regression net for the printer).
TEST(Print, EveryOpcodeRenders) {
  Arena A;
  struct Case {
    Opcode Op;
    std::initializer_list<Operand> Ex;
  };
  const Operand Eax = Operand::reg(REG_EAX);
  const Operand Ebx = Operand::reg(REG_EBX);
  const Operand Al = Operand::reg(REG_AL);
  const Operand X0 = Operand::reg(REG_XMM0);
  const Operand X1 = Operand::reg(REG_XMM1);
  const Operand M4 = Operand::mem(REG_ESI, 8, 4);
  const Operand M1 = Operand::mem(REG_ESI, 8, 1);
  const Operand M2 = Operand::mem(REG_ESI, 8, 2);
  const Operand M8 = Operand::mem(REG_ESI, 8, 8);
  const Operand I1 = Operand::imm(1, 1);
  const Operand I4 = Operand::imm(7, 4);
  const Operand PC = Operand::pc(0x1234);

  const Case Cases[] = {
      {OP_mov, {Eax, Ebx}},       {OP_mov_b, {Al, M1}},
      {OP_movzx_b, {Eax, Al}},    {OP_movzx_w, {Eax, M2}},
      {OP_movsx_b, {Eax, Al}},    {OP_movsx_w, {Eax, M2}},
      {OP_lea, {Eax, M4}},        {OP_xchg, {Eax, Ebx}},
      {OP_push, {Eax}},           {OP_pop, {Eax}},
      {OP_add, {Eax, I4}},        {OP_or, {Eax, Ebx}},
      {OP_adc, {Eax, Ebx}},       {OP_sbb, {Eax, Ebx}},
      {OP_and, {Eax, Ebx}},       {OP_sub, {Eax, Ebx}},
      {OP_xor, {Eax, Ebx}},       {OP_cmp, {Eax, Ebx}},
      {OP_inc, {Eax}},            {OP_dec, {Eax}},
      {OP_neg, {Eax}},            {OP_not, {Eax}},
      {OP_test, {Eax, Ebx}},      {OP_imul, {Eax, Ebx}},
      {OP_mul, {Ebx}},            {OP_idiv, {Ebx}},
      {OP_cdq, {}},               {OP_shl, {Eax, I1}},
      {OP_shr, {Eax, I1}},        {OP_sar, {Eax, I1}},
      {OP_jmp, {PC}},             {OP_jmp_ind, {Eax}},
      {OP_call, {PC}},            {OP_call_ind, {Eax}},
      {OP_ret, {}},               {OP_ret_imm, {Operand::imm(8, 2)}},
      {OP_jz, {PC}},              {OP_jnle, {PC}},
      {OP_jecxz, {PC}},           {OP_int, {Operand::imm(0x80, 1)}},
      {OP_hlt, {}},               {OP_nop, {}},
      {OP_movsd, {X0, X1}},       {OP_addsd, {X0, M8}},
      {OP_subsd, {X0, X1}},       {OP_mulsd, {X0, X1}},
      {OP_divsd, {X0, X1}},       {OP_ucomisd, {X0, X1}},
      {OP_cvtsi2sd, {X0, Eax}},   {OP_cvttsd2si, {Eax, X0}},
      {OP_clientcall, {I4}},
      {OP_savef, {Operand::memAbs(0x7000, 4)}},
      {OP_restf, {Operand::memAbs(0x7000, 4)}},
  };
  for (const Case &C : Cases) {
    Instr *I = Instr::createSynth(A, C.Op, C.Ex);
    ASSERT_NE(I, nullptr) << opcodeName(C.Op);
    std::string Name = opcodeName(C.Op);
    EXPECT_NE(instrToAsm(*I).find(Name), std::string::npos)
        << "asm view of " << Name;
    EXPECT_NE(instrToString(*I).find(Name), std::string::npos)
        << "detail view of " << Name;
  }
}

} // namespace
