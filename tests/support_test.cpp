//===- tests/support_test.cpp - Support library tests --------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/OutStream.h"
#include "support/Rng.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace rio;

namespace {

TEST(Arena, CountsBytesAndAlignments) {
  Arena A(256);
  EXPECT_EQ(A.bytesUsed(), 0u);
  void *P1 = A.allocate(10, 1);
  EXPECT_EQ(A.bytesUsed(), 10u);
  // 8-byte alignment after an odd size adds padding to the count.
  void *P2 = A.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 8, 0u);
  EXPECT_GE(A.bytesUsed(), 18u);
  EXPECT_EQ(A.numAllocations(), 2u);
  ASSERT_NE(P1, P2);

  // Writable, distinct storage.
  std::memset(P1, 0xAA, 10);
  std::memset(P2, 0xBB, 8);
  EXPECT_EQ(static_cast<uint8_t *>(P1)[9], 0xAA);
}

TEST(Arena, GrowsAcrossSlabs) {
  Arena A(64); // tiny slabs force growth
  std::set<void *> Seen;
  for (int I = 0; I != 100; ++I) {
    void *P = A.allocate(48, 8);
    EXPECT_TRUE(Seen.insert(P).second) << "allocation reuse!";
    std::memset(P, I, 48);
  }
  EXPECT_GE(A.bytesUsed(), 4800u);
}

TEST(Arena, OversizedAllocationsWork) {
  Arena A(64);
  void *Big = A.allocate(10000, 16);
  ASSERT_NE(Big, nullptr);
  std::memset(Big, 0xCC, 10000);
}

TEST(Arena, ResetReclaims) {
  Arena A(1024);
  A.allocate(100);
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_EQ(A.numAllocations(), 0u);
  A.allocate(50);
  EXPECT_EQ(A.bytesUsed(), 50u);
}

TEST(Arena, CopyBytes) {
  Arena A;
  const uint8_t Data[] = {1, 2, 3, 4, 5};
  uint8_t *Copy = A.copyBytes(Data, sizeof(Data));
  EXPECT_EQ(std::memcmp(Copy, Data, sizeof(Data)), 0);
  EXPECT_NE(Copy, Data);
}

TEST(OutStreamTest, PrintfAndOperators) {
  StringOutStream OS;
  OS.printf("x=%d s=%s", 42, "hi");
  OS << " tail " << int64_t(-7) << " " << 2.5;
  EXPECT_EQ(OS.str(), "x=42 s=hi tail -7 2.5");
  OS.clear();
  EXPECT_TRUE(OS.str().empty());
}

TEST(OutStreamTest, LongFormattedOutput) {
  StringOutStream OS;
  std::string Long(1000, 'z');
  OS.printf("[%s]", Long.c_str());
  EXPECT_EQ(OS.str().size(), 1002u);
}

TEST(Statistics, CountersAndPrinting) {
  StatisticSet S;
  EXPECT_EQ(S.get("missing"), 0u);
  ++S.counter("a");
  S.counter("b") += 10;
  EXPECT_EQ(S.get("a"), 1u);
  EXPECT_EQ(S.get("b"), 10u);
  StringOutStream OS;
  S.print(OS);
  EXPECT_NE(OS.str().find("a"), std::string::npos);
  EXPECT_NE(OS.str().find("10"), std::string::npos);
  S.clear();
  EXPECT_EQ(S.get("b"), 0u);
}

TEST(RngTest, DeterministicAndBounded) {
  Rng A(123), B(123), C(124);
  bool Diverged = false;
  for (int I = 0; I != 100; ++I) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next()) << "same seed must give same sequence";
    Diverged = Diverged || (V != C.next());
  }
  EXPECT_TRUE(Diverged) << "different seeds should diverge";

  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(RngTest, ChanceIsRoughlyCalibrated) {
  Rng R(99);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2200);
  EXPECT_LT(Hits, 2800);
}

} // namespace
