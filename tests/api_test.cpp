//===- tests/api_test.cpp - dr_api surface tests -------------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "support/OutStream.h"

using namespace rio;
using namespace rio::test;

namespace {

Program counterLoop(int Iters) {
  return assembleOrDie(R"(
    main:
      mov ecx, )" + std::to_string(Iters) + R"(
      mov eax, 0
    loop:
      add eax, ecx
      dec ecx
      jnz loop
      mov ebx, eax
      mov eax, 1
      int 0x80
  )");
}

TEST(DrApi, FunctionClientReceivesPaperStyleHooks) {
  // The paper's Table 3 shape: free functions with void* context.
  static int Inits, Exits, Bbs, Traces;
  Inits = Exits = Bbs = Traces = 0;
  DrClientFunctions Hooks;
  Hooks.dynamorio_init = [] { ++Inits; };
  Hooks.dynamorio_exit = [] { ++Exits; };
  Hooks.dynamorio_basic_block = [](void *context, app_pc tag, InstrList *bb) {
    ASSERT_NE(context, nullptr);
    ASSERT_NE(bb, nullptr);
    EXPECT_NE(tag, 0u);
    ++Bbs;
  };
  Hooks.dynamorio_trace = [](void *, app_pc, InstrList *) { ++Traces; };

  Program P = counterLoop(20000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  std::unique_ptr<Client> C(makeFunctionClient(Hooks));
  Runtime RT(M, RuntimeConfig::full(), C.get());
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(Inits, 1);
  EXPECT_EQ(Exits, 1);
  EXPECT_GE(Bbs, 3);
  EXPECT_GE(Traces, 1);
}

TEST(DrApi, EndTraceHookFunctionStyle) {
  static int Queries;
  Queries = 0;
  DrClientFunctions Hooks;
  Hooks.dynamorio_end_trace = [](void *, app_pc, app_pc) {
    ++Queries;
    return int(TRACE_END_NOW);
  };
  Program P = counterLoop(20000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  std::unique_ptr<Client> C(makeFunctionClient(Hooks));
  Runtime RT(M, RuntimeConfig::full(), C.get());
  ASSERT_EQ(RT.run().Status, RunStatus::Exited);
  EXPECT_GE(Queries, 1);
  EXPECT_EQ(RT.stats().get("traces_built"),
            RT.stats().get("trace_blocks_total")); // every trace is 1 block
}

TEST(DrApi, InstrListExpansionLevels) {
  // Lift a block at Level 0 and expand via the API.
  Program P = counterLoop(5);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  void *context = &RT;

  class ExpandClient : public Client {
  public:
    unsigned BundleEntries = 0, ExpandedEntries = 0, Counted = 0;
    void onBasicBlock(Runtime &RT2, AppPc, InstrList &Block) override {
      if (Done)
        return;
      Done = true;
      BundleEntries = Block.size();
      Counted = instrlist_num_instrs(&Block);
      instrlist_expand(&RT2, &Block, 3);
      ExpandedEntries = Block.size();
      for (Instr &I : Block) {
        EXPECT_FALSE(I.isBundle());
        EXPECT_GE(int(I.level()), 3);
      }
    }
    bool Done = false;
  };
  (void)context;

  Machine M2;
  ASSERT_TRUE(loadProgram(M2, P));
  ExpandClient C;
  Runtime RT2(M2, RuntimeConfig::linkDirect(), &C);
  ASSERT_EQ(RT2.run().Status, RunStatus::Exited);
  EXPECT_LT(C.BundleEntries, C.ExpandedEntries);
  EXPECT_EQ(C.Counted, C.ExpandedEntries);
}

TEST(DrApi, CreationMacrosMatchFigure3) {
  Program P = counterLoop(5);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  void *dc = &RT;

  Instr *Add = INSTR_CREATE_add(dc, opnd_create_reg(REG_EAX),
                                OPND_CREATE_INT8(1));
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(instr_get_opcode(Add), OP_add);
  EXPECT_EQ(instr_num_srcs(Add), 2u); // imm + dst-as-src (implicit filled)
  EXPECT_EQ(instr_num_dsts(Add), 1u);
  EXPECT_TRUE(instr_get_src(Add, 0).isImm());

  Instr *Push = INSTR_CREATE_push(dc, opnd_create_reg(REG_EBP));
  ASSERT_NE(Push, nullptr);
  // push has implicit esp source and stack-slot destination.
  EXPECT_EQ(instr_num_srcs(Push), 2u);
  EXPECT_EQ(instr_num_dsts(Push), 2u);
  EXPECT_TRUE(instr_get_dst(Push, 1).isMem());

  // Bad operand combinations return null rather than aborting.
  EXPECT_EQ(INSTR_CREATE_lea(dc, opnd_create_reg(REG_EAX),
                             opnd_create_reg(REG_EBX)),
            nullptr);
}

TEST(DrApi, TlsFieldAndSpillSlots) {
  Program P = counterLoop(5);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  void *dc = &RT;
  dr_set_tls_field(dc, 0xDEADBEEF);
  EXPECT_EQ(dr_get_tls_field(dc), 0xDEADBEEFu);
  EXPECT_NE(dr_spill_slot_addr(dc, 0), dr_spill_slot_addr(dc, 1));
  EXPECT_GE(dr_spill_slot_addr(dc, 0), M.runtimeBase());
}

TEST(DrApi, SaveRestoreRegInsertionWorks) {
  // A client that round-trips ebx through a spill slot at block entry;
  // behaviour must be preserved.
  class SpillClient : public Client {
  public:
    void onBasicBlock(Runtime &RT, AppPc, InstrList &Block) override {
      void *dc = &RT;
      Instr *First = instrlist_first(&Block);
      dr_save_reg(dc, &Block, First, REG_EBX, 5);
      dr_restore_reg(dc, &Block, First, REG_EBX, 5);
    }
  };
  Program P = counterLoop(100);
  NativeRun Native = runNative(P);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  SpillClient C;
  Runtime RT(M, RuntimeConfig::full(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, Native.ExitCode);
}

TEST(DrApi, CustomExitStubsRunWhenLinked) {
  // The paper Section 3.2 feature: attach a stub to the loop's backward
  // exit that counts executions, flowing through the stub even when
  // linked.
  class StubClient : public Client {
  public:
    uint32_t Slot = 0;
    void onBasicBlock(Runtime &RT, AppPc, InstrList &Block) override {
      void *dc = &RT;
      Slot = RT.slots().ScratchSlots + 8;
      // Find the block's conditional exit (the lifted list also carries an
      // appended fall-through jump after it).
      Instr *CondExit = nullptr;
      for (Instr &I : Block)
        if (!I.isBundle() && !I.isLabel() && I.isCondBranch())
          CondExit = &I;
      if (!CondExit)
        return;
      InstrList *Stub = dr_newlist(dc);
      // Flags-transparent counter bump in the stub.
      Instr *Seq[5] = {
          instr_create(dc, OP_mov,
                       {Operand::memAbs(dr_spill_slot_addr(dc, 6), 4),
                        Operand::reg(REG_ECX)}),
          instr_create(dc, OP_mov,
                       {Operand::reg(REG_ECX), Operand::memAbs(Slot, 4)}),
          instr_create(dc, OP_lea,
                       {Operand::reg(REG_ECX), Operand::mem(REG_ECX, 1, 4)}),
          instr_create(dc, OP_mov,
                       {Operand::memAbs(Slot, 4), Operand::reg(REG_ECX)}),
          instr_create(dc, OP_mov,
                       {Operand::reg(REG_ECX),
                        Operand::memAbs(dr_spill_slot_addr(dc, 6), 4)}),
      };
      for (Instr *I : Seq)
        instrlist_append(Stub, I);
      dr_set_exit_stub(dc, CondExit, Stub, /*always_through=*/true);
    }
  };

  Program P = counterLoop(500);
  NativeRun Native = runNative(P);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  StubClient C;
  RuntimeConfig Config = RuntimeConfig::linkDirect(); // keep blocks stable
  Runtime RT(M, Config, &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, Native.ExitCode);
  uint32_t Count = 0;
  M.mem().read32(C.Slot, Count);
  // The loop's jnz exit is taken 499 times (the stub is on the taken edge)
  // and linked flow still passes through it.
  EXPECT_GE(Count, 499u);
  EXPECT_LE(Count, 510u);
}

TEST(DrApi, ProcessorFamilyQueries) {
  Program P = counterLoop(5);
  MachineConfig MC;
  MC.Cost = CostModel::pentiumIII();
  Machine M(MC);
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  EXPECT_EQ(proc_get_family(&RT), FAMILY_PENTIUM_III);

  Machine M2;
  ASSERT_TRUE(loadProgram(M2, P));
  Runtime RT2(M2, RuntimeConfig::linkDirect());
  EXPECT_EQ(proc_get_family(&RT2), FAMILY_PENTIUM_IV);
}

TEST(DrApi, DrPrintfGoesToClientStream) {
  Program P = counterLoop(5);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  StringOutStream Captured;
  dr_set_client_out(&RT, &Captured);
  dr_printf("hello %d\n", 42);
  dr_set_client_out(&RT, nullptr);
  EXPECT_EQ(Captured.str(), "hello 42\n");
  // Crucially: nothing leaked into the *application's* output.
  EXPECT_TRUE(M.output().empty());
}

TEST(DrApi, GlobalAllocIsTransparent) {
  Program P = counterLoop(5);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::linkDirect());
  void *Mem1 = dr_global_alloc(&RT, 128);
  void *Mem2 = dr_thread_alloc(&RT, 64);
  ASSERT_NE(Mem1, nullptr);
  ASSERT_NE(Mem2, nullptr);
  EXPECT_NE(Mem1, Mem2);
  std::memset(Mem1, 0xAB, 128); // must be writable host memory
}

} // namespace

namespace {

TEST(DrApi, FlagPreservationAroundFlagClobberingInstrumentation) {
  // A client that counts block executions with `add [slot], 1` — which
  // clobbers eflags — must bracket it with savef/restf to stay
  // transparent. Verify both that the bracketed version is correct and
  // that the counter works.
  class AddCounterClient : public Client {
  public:
    uint32_t Slot = 0;
    void onBasicBlock(Runtime &RT, AppPc, InstrList &Block) override {
      void *dc = &RT;
      Slot = RT.slots().ScratchSlots + 12;
      Operand Counter = Operand::memAbs(Slot, 4);
      Operand Flags = Operand::memAbs(RT.slots().FlagsSlot, 4);
      Instr *First = instrlist_first(&Block);
      Instr *Seq[3] = {
          INSTR_CREATE_savef(dc, Flags),
          INSTR_CREATE_add(dc, Counter, OPND_CREATE_INT8(1)),
          INSTR_CREATE_restf(dc, Flags),
      };
      for (Instr *I : Seq) {
        ASSERT_NE(I, nullptr);
        instrlist_preinsert(&Block, First, I);
      }
    }
  };

  // The program's control flow depends on flags held *across* block
  // boundaries (the jb's CF comes from the cmp in the previous block),
  // so unbracketed flag damage at block entry would change the output.
  Program P = assembleOrDie(R"(
    main:
      mov esi, 0
      mov ecx, 400
    loop:
      cmp ecx, 200
      jmp testblock        ; block break: flags must survive entry code
    testblock:
      jb lower
      add esi, 1
      jmp next
    lower:
      add esi, 1000
    next:
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
  )");
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  AddCounterClient C;
  Runtime RT(M, RuntimeConfig::linkIndirect(), &C);
  RunResult R = RT.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(M.output(), Native.Output)
      << "savef/restf must keep cross-block flags intact";
  uint32_t Count = 0;
  M.mem().read32(C.Slot, Count);
  EXPECT_GE(Count, 1200u); // 400 iterations x 3+ blocks
}

} // namespace

namespace {

TEST(DrApi, OperandAccessorFamily) {
  opnd_t R = opnd_create_reg(REG_EDX);
  EXPECT_TRUE(opnd_is_reg(R));
  EXPECT_EQ(opnd_get_reg(R), REG_EDX);
  EXPECT_TRUE(opnd_uses_reg(R, REG_EDX));
  EXPECT_FALSE(opnd_uses_reg(R, REG_EAX));
  EXPECT_EQ(opnd_size_in_bytes(R), 4);

  opnd_t I = opnd_create_immed_int(-42, 4);
  EXPECT_TRUE(opnd_is_immed_int(I));
  EXPECT_EQ(opnd_get_immed_int(I), -42);

  opnd_t M = opnd_create_base_disp(REG_ESI, REG_ECX, 4, -8, 4);
  EXPECT_TRUE(opnd_is_memory_reference(M));
  EXPECT_EQ(opnd_get_base(M), REG_ESI);
  EXPECT_EQ(opnd_get_index(M), REG_ECX);
  EXPECT_EQ(opnd_get_scale(M), 4);
  EXPECT_EQ(opnd_get_disp(M), -8);
  EXPECT_TRUE(opnd_uses_reg(M, REG_ESI));
  EXPECT_TRUE(opnd_uses_reg(M, REG_ECX));
  EXPECT_FALSE(opnd_uses_reg(M, REG_EDX));

  opnd_t P = opnd_create_pc(0x1234);
  EXPECT_TRUE(opnd_is_pc(P));
  EXPECT_EQ(opnd_get_pc(P), 0x1234u);

  EXPECT_TRUE(opnd_same(M, opnd_create_base_disp(REG_ESI, REG_ECX, 4, -8, 4)));
  EXPECT_FALSE(opnd_same(M, opnd_create_base_disp(REG_ESI, REG_ECX, 4, 0, 4)));
  EXPECT_FALSE(opnd_same(R, I));
}

} // namespace
