//===- tests/traceopt_test.cpp - Speculative trace optimizer tests -------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace optimizer (core/TraceOpt.h), both tiers:
///
///   * unit tests of the value-tracking pass, strength reduction, and the
///     liveness analyses they lean on (core/Analysis.h);
///   * end-to-end speculation under the async sideline: guards hold,
///     misspeculation deoptimizes to correct execution, storms blacklist;
///   * speculation history across persistence (dr_cache_save/load), fork
///     templates, and guard-failure deoptimization publishing under
///     suspended threads (on-stack replacement).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "api/dr_api.h"
#include "clients/Clients.h"
#include "core/Analysis.h"
#include "core/Sideline.h"
#include "core/ThreadedRunner.h"
#include "core/TraceOpt.h"
#include "ir/Print.h"
#include "isa/Eflags.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace rio;
using namespace rio::test;

namespace {

// Application memory sits below the runtime region in every configuration
// the tests build; 1 MiB is a comfortable stand-in base for unit tests.
constexpr uint32_t UnitRuntimeBase = 0x100000;
constexpr uint32_t AppA = 0x2000; // two non-overlapping app words
constexpr uint32_t AppB = 0x2100;

size_t listLength(InstrList &IL) {
  size_t N = 0;
  for (Instr *I = IL.first(); I; I = I->next())
    ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// The value-tracking pass
//===----------------------------------------------------------------------===//

TEST(ValuePass, RemovesReloadIntoSameRegister) {
  Arena A;
  InstrList IL(A);
  Operand MemA = Operand::memAbs(AppA, 4);
  IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
  IL.append(Instr::createSynth(
      A, OP_add, {Operand::reg(REG_ESI), Operand::reg(REG_EAX)}));
  IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
  ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
  EXPECT_EQ(S.LoadsRemoved, 1u);
  EXPECT_EQ(listLength(IL), 2u);
}

TEST(ValuePass, ForwardsReloadIntoOtherRegister) {
  Arena A;
  InstrList IL(A);
  Operand MemA = Operand::memAbs(AppA, 4);
  IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
  IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EBX), MemA}));
  ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
  EXPECT_EQ(S.LoadsForwarded, 1u);
  // The reload became a register copy: mov ebx, eax.
  Instr *Second = IL.first()->next();
  ASSERT_NE(Second, nullptr);
  EXPECT_EQ(Second->getOpcode(), OP_mov);
  ASSERT_TRUE(Second->getSrc(0).isReg());
  EXPECT_EQ(Second->getSrc(0).getReg(), REG_EAX);
  EXPECT_EQ(Second->getDst(0).getReg(), REG_EBX);
}

TEST(ValuePass, FoldsConstantsThroughMemory) {
  Arena A;
  InstrList IL(A);
  Operand MemA = Operand::memAbs(AppA, 4);
  IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::imm(7, 4)}));
  IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
  // RemoveLoads off so the fold path (not binding-forwarding) is exercised.
  ValuePassConfig Cfg;
  Cfg.RemoveLoads = false;
  ValuePassStats S = runValuePass(IL, UnitRuntimeBase, Cfg);
  EXPECT_EQ(S.ConstsFolded, 1u);
  Instr *Load = IL.first()->next();
  ASSERT_NE(Load, nullptr);
  ASSERT_TRUE(Load->getSrc(0).isImm());
  EXPECT_EQ(Load->getSrc(0).getImm(), 7);
}

TEST(ValuePass, ElidesDeadStoresOnlyWhenUnobserved) {
  Operand MemA = Operand::memAbs(AppA, 4);
  {
    // store ; store -> the first is dead.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::reg(REG_EAX)}));
    IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::reg(REG_EBX)}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
    EXPECT_EQ(S.DeadStoresElided, 1u);
    EXPECT_EQ(listLength(IL), 1u);
  }
  {
    // store ; load ; store -> the load observed the first store: both stay.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::reg(REG_EAX)}));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_ECX), MemA}));
    IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::reg(REG_EBX)}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
    EXPECT_EQ(S.DeadStoresElided, 0u);
    EXPECT_EQ(listLength(IL), 3u);
  }
  {
    // store ; cti ; store -> the exit path may observe the first store.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::reg(REG_EAX)}));
    IL.append(Instr::createSynth(A, OP_jnz, {Operand::pc(0x1000)}));
    IL.append(Instr::createSynth(A, OP_mov, {MemA, Operand::reg(REG_EBX)}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
    EXPECT_EQ(S.DeadStoresElided, 0u);
  }
}

TEST(ValuePass, FactsDieAtLabelsAndAliasingStores) {
  Operand MemA = Operand::memAbs(AppA, 4);
  {
    // A label is a join point: the binding does not survive it.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
    IL.append(Instr::createLabel(A));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EBX), MemA}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
    EXPECT_EQ(S.LoadsForwarded + S.LoadsRemoved, 0u);
  }
  {
    // A register-relative store may alias any application word.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
    IL.append(Instr::createSynth(
        A, OP_mov, {Operand::mem(REG_EBX, 0, 4), Operand::reg(REG_ECX)}));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EDX), MemA}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
    EXPECT_EQ(S.LoadsForwarded + S.LoadsRemoved, 0u);
  }
  {
    // ...but a runtime-private slot store cannot: the fact survives.
    Arena A;
    InstrList IL(A);
    Operand Slot = Operand::memAbs(UnitRuntimeBase + 0x40, 4);
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
    IL.append(Instr::createSynth(A, OP_mov, {Slot, Operand::reg(REG_ECX)}));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EDX), MemA}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase);
    EXPECT_EQ(S.LoadsForwarded, 1u);
  }
}

TEST(ValuePass, GuardedFactsSurviveLabelsButNotBundlesOrAliases) {
  Operand MemA = Operand::memAbs(AppA, 4);
  ValuePassConfig Cfg;
  Cfg.RemoveLoads = false;
  Cfg.GuardedFacts.push_back({MemA, 42});
  {
    // Guarded entry facts hold on every path: the fold happens past a label
    // where a scan-discovered constant would have died.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createLabel(A));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase, Cfg);
    EXPECT_EQ(S.ConstsFolded, 1u);
    Instr *Load = IL.first()->next();
    ASSERT_NE(Load, nullptr);
    ASSERT_TRUE(Load->getSrc(0).isImm());
    EXPECT_EQ(Load->getSrc(0).getImm(), 42);
  }
  {
    // A bundle is unexamined code: even guarded facts die.
    Arena A;
    InstrList IL(A);
    static const uint8_t Raw[] = {0x90};
    IL.append(Instr::createBundle(A, Raw, sizeof(Raw), 0x1000));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase, Cfg);
    EXPECT_EQ(S.ConstsFolded, 0u);
  }
  {
    // An aliasing store kills the guarded fact too.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(
        A, OP_mov, {Operand::mem(REG_EBX, 0, 4), Operand::reg(REG_ECX)}));
    IL.append(Instr::createSynth(A, OP_mov, {Operand::reg(REG_EAX), MemA}));
    ValuePassStats S = runValuePass(IL, UnitRuntimeBase, Cfg);
    EXPECT_EQ(S.ConstsFolded, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Strength reduction and the analyses under it
//===----------------------------------------------------------------------===//

TEST(StrengthReduce, RespectsCarryLiveness) {
  {
    // inc preserves CF; jb reads it -> the rewrite to add would be wrong.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_inc, {Operand::reg(REG_EAX)}));
    IL.append(Instr::createSynth(A, OP_jb, {Operand::pc(0x1000)}));
    EXPECT_EQ(reduceIncDec(IL), 0u);
    EXPECT_EQ(IL.first()->getOpcode(), OP_inc);
  }
  {
    // A CTI right after lets CF escape the trace: still refused, even
    // though jz itself reads only ZF.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_inc, {Operand::reg(REG_EAX)}));
    IL.append(Instr::createSynth(A, OP_jz, {Operand::pc(0x1000)}));
    EXPECT_EQ(reduceIncDec(IL), 0u);
  }
  {
    // A full flag writer before any reader kills the stale CF: legal.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_inc, {Operand::reg(REG_EAX)}));
    IL.append(Instr::createSynth(
        A, OP_cmp, {Operand::reg(REG_EBX), Operand::imm(3, 4)}));
    IL.append(Instr::createSynth(A, OP_jz, {Operand::pc(0x1000)}));
    EXPECT_EQ(reduceIncDec(IL), 1u);
    EXPECT_EQ(IL.first()->getOpcode(), OP_add);
    ASSERT_TRUE(IL.first()->getSrc(0).isImm());
    EXPECT_EQ(IL.first()->getSrc(0).getImm(), 1);
  }
  {
    // dec -> sub under the same rule.
    Arena A;
    InstrList IL(A);
    IL.append(Instr::createSynth(A, OP_dec, {Operand::reg(REG_EDX)}));
    IL.append(Instr::createSynth(
        A, OP_add, {Operand::reg(REG_EAX), Operand::imm(1, 4)}));
    EXPECT_EQ(reduceIncDec(IL), 1u);
    EXPECT_EQ(IL.first()->getOpcode(), OP_sub);
  }
}

TEST(Analysis, RegisterLivenessSeesPartialByteWrites) {
  Arena A;
  {
    // mov al, 1 writes only the low byte: eax is NOT fully redefined, so a
    // conservative answer (live) is required at entry.
    InstrList IL(A);
    IL.append(Instr::createSynth(
        A, OP_mov_b, {Operand::reg(REG_AL), Operand::imm(1, 1)}));
    EXPECT_TRUE(registerLiveAt(IL.first(), REG_EAX));
    // Sub-register queries stay conservative as well.
    EXPECT_TRUE(registerLiveAt(IL.first(), REG_AL));
  }
  {
    // The full 32-bit write does redefine it.
    InstrList IL(A);
    IL.append(Instr::createSynth(
        A, OP_mov, {Operand::reg(REG_EAX), Operand::imm(1, 4)}));
    EXPECT_FALSE(registerLiveAt(IL.first(), REG_EAX));
  }
  {
    // A partial write between entry and the full write does not hide it.
    InstrList IL(A);
    IL.append(Instr::createSynth(
        A, OP_mov_b, {Operand::reg(REG_AL), Operand::imm(1, 1)}));
    IL.append(Instr::createSynth(
        A, OP_mov, {Operand::reg(REG_EAX), Operand::imm(2, 4)}));
    EXPECT_FALSE(registerLiveAt(IL.first(), REG_EAX));
  }
}

TEST(Analysis, LiveEflagsAtBundleBoundaries) {
  Arena A;
  static const uint8_t Raw[] = {0x90};
  {
    // inc writes everything but CF; the bundle may read anything, so CF
    // (and only what inc left unwritten) must be reported live past it.
    InstrList IL(A);
    Instr *Inc = Instr::createSynth(A, OP_inc, {Operand::reg(REG_EAX)});
    IL.append(Inc);
    IL.append(Instr::createBundle(A, Raw, sizeof(Raw), 0x1000));
    EXPECT_NE(liveEflagsAt(Inc->next()) & EFLAGS_READ_CF, 0u);
    // ...which is exactly why strength reduction must refuse here.
    EXPECT_EQ(reduceIncDec(IL), 0u);
    EXPECT_EQ(IL.first()->getOpcode(), OP_inc);
  }
  {
    // add writes all six flags: a bundle after it cannot see stale flags,
    // so nothing is live before the add beyond what the add itself reads.
    InstrList IL(A);
    Instr *Add = Instr::createSynth(
        A, OP_add, {Operand::reg(REG_EAX), Operand::imm(1, 4)});
    IL.append(Add);
    IL.append(Instr::createBundle(A, Raw, sizeof(Raw), 0x1000));
    EXPECT_EQ(liveEflagsAt(Add), 0u);
  }
}

TEST(Analysis, GuardInstructionsAreFlagNeutral) {
  // The guard idiom is mov/lea/jecxz/jmp precisely because none of them
  // touches eflags; pin that so an opcode-table change cannot silently
  // break guard transparency.
  Arena A;
  Instr *Seq[] = {
      Instr::createSynth(A, OP_mov,
                         {Operand::memAbs(AppA, 4), Operand::reg(REG_ECX)}),
      Instr::createSynth(A, OP_mov,
                         {Operand::reg(REG_ECX), Operand::memAbs(AppA, 4)}),
      Instr::createSynth(A, OP_lea,
                         {Operand::reg(REG_ECX), Operand::mem(REG_ECX, -7, 4)}),
      Instr::createSynth(A, OP_jecxz, {Operand::pc(0)}),
      Instr::createSynth(A, OP_jmp, {Operand::pc(0)}),
  };
  for (Instr *I : Seq) {
    ASSERT_NE(I, nullptr);
    EXPECT_EQ(I->getEflags() & (EFLAGS_READ_ALL | EFLAGS_WRITE_ALL), 0u)
        << instrToString(*I);
  }
}

TEST(Analysis, CollapseRedundantSpillsAdversarialChain) {
  // An adversarial load/store chain over two slots and two registers:
  // every adjacent pair that cancels must be collapsed in ONE bounded
  // call, and the removal count must not depend on rescan luck. The old
  // restart-from-the-head fixpoint was quadratic on exactly this shape.
  Arena A;
  InstrList IL(A);
  Operand S1 = Operand::memAbs(UnitRuntimeBase + 0x10, 4);
  Operand S2 = Operand::memAbs(UnitRuntimeBase + 0x14, 4);
  Operand Eax = Operand::reg(REG_EAX);
  Operand Ebx = Operand::reg(REG_EBX);
  // store S1,eax ; load eax,S1  (cancels: load dropped)
  // store S2,ebx ; load ebx,S2  (cancels)
  // load eax,S1 ; store S1,eax  (cancels: store dropped)
  // load eax,S1 ; mov eax,ebx   (dead slot load dropped)
  // repeated 8 times, interleaved with labels that fence the runs.
  for (int Round = 0; Round != 8; ++Round) {
    IL.append(Instr::createSynth(A, OP_mov, {S1, Eax}));
    IL.append(Instr::createSynth(A, OP_mov, {Eax, S1}));
    IL.append(Instr::createSynth(A, OP_mov, {S2, Ebx}));
    IL.append(Instr::createSynth(A, OP_mov, {Ebx, S2}));
    IL.append(Instr::createSynth(A, OP_mov, {Eax, S1}));
    IL.append(Instr::createSynth(A, OP_mov, {S1, Eax}));
    IL.append(Instr::createSynth(A, OP_mov, {Eax, S1}));
    IL.append(Instr::createSynth(A, OP_mov, {Eax, Ebx}));
    IL.append(Instr::createLabel(A));
  }
  size_t Before = listLength(IL);
  unsigned Removed = collapseRedundantSpills(IL);
  // Per round: the two reload pairs drop one load each, the writeback
  // pair drops its store, and each of the two loads left adjacent to a
  // full redefinition of its register drops — 5 removals x 8 rounds,
  // independent of rescan order.
  EXPECT_EQ(Removed, 40u);
  EXPECT_EQ(listLength(IL), Before - Removed);
  // Convergence: a second pass finds nothing (no oscillation, no leftover
  // adjacent pair the bounded scan should have caught).
  EXPECT_EQ(collapseRedundantSpills(IL), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end speculation under the async sideline
//===----------------------------------------------------------------------===//

/// A loop whose body loads the same application word several times per
/// iteration; [val] never changes unless the cold flip path runs. The
/// output folds every load into the printed sum, so a wrong speculation
/// that failed to bail out is caught by the native comparison.
///   FlipAt == 0   : [val] is genuinely loop-invariant.
///   FlipAt == K   : one cold-path store rewrites [val] when ecx == K.
///   FlipMask == M : the cold path runs whenever (ecx & M) == 0 (a storm).
std::string specSource(int Iters, int FlipAt, int FlipMask) {
  std::string Cold;
  if (FlipAt > 0)
    Cold = "  cmp ecx, " + std::to_string(FlipAt) + "\n  je flip\n";
  else if (FlipMask > 0)
    Cold = "  mov eax, ecx\n  and eax, " + std::to_string(FlipMask) +
           "\n  jz flip\n";
  return R"(
    .entry main
    val: .word 7
    main:
      mov esi, 0
      mov ecx, )" + std::to_string(Iters) + R"(
    loop:
      mov eax, [val]
      add esi, eax
      mov ebx, [val]
      add esi, ebx
      mov edx, [val]
      add esi, edx
      and esi, 0xFFFFFF
)" + Cold + R"(
    back:
      dec ecx
      jnz loop
      mov ebx, esi
      mov eax, 2
      int 0x80
      mov ebx, 0
      mov eax, 1
      int 0x80
    flip:
      mov eax, [val]
      add eax, 13
      and eax, 1023
      mov [val], eax
      jmp back
  )";
}

/// Everything one speculative run owns, exactly the riodyn wiring: the
/// profiler's trace-sample hook feeds TraceOptClient::observe, a hit asks
/// the async sideline for a re-optimization pass, and the publication
/// point emits the guards.
struct SpecRun {
  std::unique_ptr<Machine> M;
  std::unique_ptr<SampleProfile> Profiler;
  std::unique_ptr<TraceOptClient> Client;
  std::unique_ptr<SidelineOptimizer> Sideline;
  std::unique_ptr<Runtime> RT;
  RunResult R;
};

SpecRun runSpec(const Program &P, RuntimeConfig Config = RuntimeConfig::full(),
                TraceOptOptions Opts = TraceOptOptions(),
                uint64_t SampleInterval = 200) {
  SpecRun S;
  S.M = std::make_unique<Machine>();
  EXPECT_TRUE(loadProgram(*S.M, P));
  Opts.Speculate = true;
  S.Profiler = std::make_unique<SampleProfile>(SampleInterval);
  S.Client = std::make_unique<TraceOptClient>(Opts);
  S.Sideline =
      std::make_unique<SidelineOptimizer>(*S.Client, SidelineMode::Async);
  Config.SidelinePump = S.Sideline.get();
  Config.Profiler = S.Profiler.get();
  S.RT = std::make_unique<Runtime>(*S.M, Config, S.Sideline.get());
  Runtime *RTP = S.RT.get();
  SidelineOptimizer *SP = S.Sideline.get();
  TraceOptClient *TC = S.Client.get();
  S.Profiler->setTraceSampleHook([RTP, SP, TC](uint32_t Tag, uint64_t N) {
    if (TC->observe(*RTP, Tag, N))
      SP->requestReopt(*RTP, Tag);
  });
  S.R = runWithSideline(*S.RT, *S.Sideline);
  return S;
}

TEST(TraceOptSpec, StableSiteSpeculatesAndHolds) {
  Program P = assembleOrDie(specSource(6000, 0, 0));
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  SpecRun S = runSpec(P);
  ASSERT_EQ(S.R.Status, RunStatus::Exited) << S.R.FaultReason;
  EXPECT_EQ(S.M->output(), Native.Output);
  // The invariant site was speculated and the guards never fired.
  EXPECT_GE(S.Client->speculationsApplied(), 1u);
  EXPECT_GE(S.Client->guardsEmitted(), 1u);
  EXPECT_GE(S.Client->publishStats().ConstsFolded, 1u);
  EXPECT_EQ(S.RT->stats().get("traceopt_guard_failures"), 0u);
  EXPECT_EQ(S.RT->stats().get("traceopt_speculations"),
            S.Client->speculationsApplied());
  EXPECT_TRUE(S.RT->traceoptBlacklist().empty());

  // The profiler rides the simulated clock: the whole speculative schedule
  // is deterministic, cycle for cycle.
  SpecRun Again = runSpec(P);
  ASSERT_EQ(Again.R.Status, RunStatus::Exited);
  EXPECT_EQ(Again.R.Cycles, S.R.Cycles);
  EXPECT_EQ(Again.Client->speculationsApplied(),
            S.Client->speculationsApplied());
}

TEST(TraceOptSpec, MisspeculationDeoptimizesToCorrectExecution) {
  // [val] is stable long enough to be speculated, then a cold-path store
  // rewrites it: the guard must fail, charge DeoptCost, and rebuild a
  // pristine body that computes the same sum the native machine does.
  Program P = assembleOrDie(specSource(6000, 2000, 0));
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  SpecRun S = runSpec(P);
  ASSERT_EQ(S.R.Status, RunStatus::Exited) << S.R.FaultReason;
  EXPECT_EQ(S.M->output(), Native.Output);
  EXPECT_GE(S.Client->speculationsApplied(), 1u);
  EXPECT_GE(S.RT->stats().get("traceopt_guard_failures"), 1u);
  EXPECT_GE(S.RT->stats().get("deoptimizations"), 1u);
  AppPc Tag = P.symbol("loop");
  EXPECT_GE(S.RT->traceoptGuardFailures(Tag), 1u);
  EXPECT_EQ(dr_traceopt_guard_failures(S.RT.get(), Tag),
            S.RT->traceoptGuardFailures(Tag));
}

TEST(TraceOptSpec, DeoptStormBlacklistsTheTag) {
  // The flip path runs every 1024 iterations: each re-speculation is
  // refuted a few thousand cycles later. After TraceOptBlacklistAfter
  // failures the tag must be pinned un-speculatable for good.
  Program P = assembleOrDie(specSource(30000, 0, 1023));
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited);

  TraceOptOptions Opts;
  Opts.StableSamples = 2;
  SpecRun S = runSpec(P, RuntimeConfig::full(), Opts, 150);
  ASSERT_EQ(S.R.Status, RunStatus::Exited) << S.R.FaultReason;
  EXPECT_EQ(S.M->output(), Native.Output);

  AppPc Tag = P.symbol("loop");
  ASSERT_TRUE(S.RT->traceoptBlacklisted(Tag));
  EXPECT_GE(S.RT->stats().get("traceopt_blacklisted"), 1u);
  EXPECT_GE(S.RT->traceoptGuardFailures(Tag),
            uint32_t(RuntimeConfig::full().TraceOptBlacklistAfter));

  // The dr_ view agrees, including the two-call sizing idiom.
  EXPECT_TRUE(dr_traceopt_blacklisted(S.RT.get(), Tag));
  uint32_t Total = dr_traceopt_blacklist(S.RT.get(), nullptr, 0);
  ASSERT_GE(Total, 1u);
  std::vector<app_pc> Tags(Total);
  EXPECT_EQ(dr_traceopt_blacklist(S.RT.get(), Tags.data(), Total), Total);
  EXPECT_NE(std::find(Tags.begin(), Tags.end(), Tag), Tags.end());
}

//===----------------------------------------------------------------------===//
// Speculation history across persistence and forking
//===----------------------------------------------------------------------===//

TEST(TraceOptPersist, BlacklistSurvivesSaveAndLoad) {
  Program P = assembleOrDie(specSource(30000, 0, 1023));
  TraceOptOptions Opts;
  Opts.StableSamples = 2;
  SpecRun S = runSpec(P, RuntimeConfig::full(), Opts, 150);
  ASSERT_EQ(S.R.Status, RunStatus::Exited) << S.R.FaultReason;
  AppPc Tag = P.symbol("loop");
  ASSERT_TRUE(S.RT->traceoptBlacklisted(Tag));
  uint32_t Fails = S.RT->traceoptGuardFailures(Tag);
  ASSERT_GE(Fails, 1u);

  std::string Path = testing::TempDir() + "traceopt_persist_test.riocache";
  ASSERT_TRUE(dr_cache_save(S.RT.get(), Path.c_str()));

  // A cold runtime warm-started from the image refuses to re-learn the
  // lesson the hard way: the blacklist and failure counters are restored
  // before the first speculation could be planned.
  Machine M2;
  ASSERT_TRUE(loadProgram(M2, P));
  Runtime RT2(M2, RuntimeConfig::full());
  ASSERT_TRUE(dr_cache_load(&RT2, Path.c_str()));
  EXPECT_TRUE(RT2.traceoptBlacklisted(Tag));
  EXPECT_EQ(RT2.traceoptGuardFailures(Tag), Fails);
  // And the warm-started run still computes the right answer.
  EXPECT_EQ(RT2.run().Status, RunStatus::Exited);
  EXPECT_EQ(M2.output(), S.M->output());
  std::remove(Path.c_str());
}

TEST(TraceOptFork, SpeculationHistoryFollowsForkAndUnshare) {
  Program P = assembleOrDie(specSource(30000, 0, 1023));
  TraceOptOptions Opts;
  Opts.StableSamples = 2;
  SpecRun S = runSpec(P, RuntimeConfig::full(), Opts, 150);
  ASSERT_EQ(S.R.Status, RunStatus::Exited) << S.R.FaultReason;
  AppPc Tag = P.symbol("loop");
  ASSERT_TRUE(S.RT->traceoptBlacklisted(Tag));
  uint32_t Fails = S.RT->traceoptGuardFailures(Tag);

  // The sideline stack (SidelineOptimizer over TraceOptClient) is
  // persist-safe end to end, so the warmed runtime can freeze directly.
  S.M->resetForRun();
  S.RT->resetThreadForRun();
  std::string Err;
  ASSERT_TRUE(S.RT->freezeTemplate(&Err)) << Err;

  // The fork's flat copy hands the tenant the verdicts immediately...
  Machine TenantM(*S.M);
  auto Tenant = Runtime::forkFrom(*S.RT, TenantM, &Err);
  ASSERT_NE(Tenant, nullptr) << Err;
  EXPECT_TRUE(Tenant->isForked());
  EXPECT_TRUE(Tenant->traceoptBlacklisted(Tag));
  EXPECT_EQ(Tenant->traceoptGuardFailures(Tag), Fails);

  // ...and the unshare replay (which rebuilds all metadata from the frozen
  // image) must not rewind them either.
  Tenant->flushCaches();
  EXPECT_FALSE(Tenant->isForked());
  EXPECT_TRUE(Tenant->traceoptBlacklisted(Tag));
  EXPECT_EQ(Tenant->traceoptGuardFailures(Tag), Fails);
}

//===----------------------------------------------------------------------===//
// Guard failure under suspended threads: deopt publication + OSR
//===----------------------------------------------------------------------===//

/// Three workers hammer one shared inner loop whose body reads [specval]
/// in a self-cancelling pattern (add then sub), so the printed sum is
/// independent of whatever the test writes into the word. Worker 0's
/// outer loop carries the driver hook block.
Program sharedSpecProgram(int Workers, int Outer, int Inner) {
  std::string S = R"(
    specval: .word 7
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
    main:
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  and esi, 0xFFFFFF\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";
  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov edi, " + std::to_string(Outer + W * 7) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  call shared_work\n";
    S += "  dec edi\n  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  S += R"(
    shared_work:
      mov edx, )" + std::to_string(Inner) + R"(
      swloop:
        mov eax, [specval]
        add esi, eax
        mov ebx, [specval]
        sub esi, ebx
        add esi, edx
        and esi, 0xFFFFFF
        dec edx
        jnz swloop
      ret
  )";
  return assembleOrDie(S);
}

/// From worker 0's outer loop, drives the speculative tier by hand — the
/// async sideline machinery is single-runtime, but the protocol under it
/// (observe -> guarded publication -> guard failure -> deopt publication)
/// is exactly what the dispatcher executes here — then falsifies the
/// speculation so every other worker's next trace entry takes the guard
/// exit while threads sit suspended mid-trace.
class SpecStormDriver : public Client {
public:
  AppPc HookTag = 0;
  AppPc TargetTag = 0;
  uint32_t ValAddr = 0;
  int MaxRounds = 12;
  int Rounds = 0;
  TraceOptClient TO;

  static TraceOptOptions driverOpts() {
    TraceOptOptions O;
    O.Speculate = true;
    O.StableSamples = 1; // one observation suffices: the driver is the clock
    return O;
  }
  SpecStormDriver() : TO(driverOpts()) {}

  void onBasicBlock(Runtime &RT, AppPc Tag, InstrList &Block) override {
    if (Tag != HookTag)
      return;
    uint32_t Id = RT.registerCleanCall([this](CleanCallContext &Ctx) {
      Runtime &RT = Ctx.RT;
      if (Rounds >= MaxRounds || RT.traceoptBlacklisted(TargetTag))
        return;
      Fragment *F = RT.lookupFragment(TargetTag);
      if (!F || !F->isTrace() || F->TraceBlocks.empty())
        return;
      // Never republish a body stitched through the hook block: the
      // rebuild would drop this instrumentation.
      if (std::find(F->TraceBlocks.begin(), F->TraceBlocks.end(), HookTag) !=
          F->TraceBlocks.end())
        return;
      if (!TO.observe(RT, TargetTag, 1))
        return;
      Arena A;
      InstrList *IL = RT.decodeFragment(A, TargetTag);
      if (!IL)
        return;
      TO.onSidelinePublish(RT, TargetTag, *IL);
      if (!RT.publishVersion(TargetTag, *IL))
        return;
      ++Rounds;
      // Falsify the speculated value: the next entry into the guarded
      // body — by any thread, including ones about to be resumed inside
      // the retired version — bails to the dispatcher and deoptimizes.
      uint32_t Cur = 0;
      RT.machine().mem().read32(ValAddr, Cur);
      RT.machine().mem().write32(ValAddr, Cur + 13);
    });
    Instr *Call = Instr::createSynth(Block.arena(), OP_clientcall,
                                     {Operand::imm(int64_t(Id), 4)});
    ASSERT_NE(Call, nullptr);
    Block.prepend(Call);
  }
};

uint64_t sumThreadedStat(ThreadedRunner &Runner, const char *Name) {
  uint64_t Sum = 0;
  std::set<Runtime *> Seen;
  for (unsigned Tid = 0; Tid != Runner.threadsSeen(); ++Tid)
    if (Runtime *RT = Runner.runtimeFor(Tid))
      if (Seen.insert(RT).second)
        Sum += RT->stats().get(Name);
  return Sum;
}

TEST(TraceOptThreads, GuardFailureDeoptTransfersSuspendedThreadsViaOsr) {
  Program P = sharedSpecProgram(3, 260, 40);
  Machine Native;
  ASSERT_TRUE(loadProgram(Native, P));
  RunResult NR = runThreadedNative(Native);
  ASSERT_EQ(NR.Status, RunStatus::Exited) << NR.FaultReason;

  RuntimeConfig Config = RuntimeConfig::full();
  Config.Sharing = CacheSharing::Shared;
  Config.ThreadQuantum = 700; // frequent mid-fragment suspensions
  Config.TraceOptBlacklistAfter = 64; // let the storm run all its rounds
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  SpecStormDriver C;
  C.HookTag = P.symbol("wloop0");
  C.TargetTag = P.symbol("swloop");
  C.ValAddr = P.symbol("specval");
  ThreadedRunner Runner(M, Config, &C);
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;

  // Transparency across the whole storm: [specval] cancels out of every
  // worker's sum, so the output must match the unperturbed native run.
  EXPECT_EQ(M.output(), Native.output());

  // The storm ran: guarded versions were published, every falsified guard
  // failed at the dispatcher, and each failure deoptimized the tag.
  EXPECT_GE(C.Rounds, 2);
  EXPECT_GE(sumThreadedStat(Runner, "traceopt_guard_failures"), 2u);
  EXPECT_GE(sumThreadedStat(Runner, "deoptimizations"), 2u);
  EXPECT_GE(sumThreadedStat(Runner, "sideline_versions_published"), 2u);
  // Four contexts share one runtime and one cache: with this many
  // publication rounds against a 700-cycle quantum, some thread was
  // suspended inside a retired body and had to be moved by on-stack
  // replacement rather than resumed into stale bytes.
  EXPECT_GE(sumThreadedStat(Runner, "osr_transfers"), 1u);
}

} // namespace
