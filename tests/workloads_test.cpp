//===- tests/workloads_test.cpp - Workload suite tests ------------------------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Runtime.h"
#include "workloads/Workloads.h"

using namespace rio;
using namespace rio::test;

namespace {

/// Every workload assembles, runs natively to a clean exit, and produces a
/// non-empty deterministic checksum.
class WorkloadNative : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadNative, RunsCleanly) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun A = runNative(P);
  ASSERT_EQ(A.Status, RunStatus::Exited) << A.FaultReason;
  EXPECT_EQ(A.ExitCode, 0);
  EXPECT_FALSE(A.Output.empty());
  // Deterministic.
  NativeRun B = runNative(P);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

/// Every workload is transparent under the full runtime: identical output
/// and exit code.
TEST_P(WorkloadNative, TransparentUnderRuntime) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  Program P = buildWorkload(*W, W->TestScale);
  NativeRun Native = runNative(P);
  ASSERT_EQ(Native.Status, RunStatus::Exited) << Native.FaultReason;

  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  Runtime RT(M, RuntimeConfig::full());
  RunResult R = RT.run();
  EXPECT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.ExitCode, Native.ExitCode);
  EXPECT_EQ(M.output(), Native.Output);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadNative,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "perlbmk", "gap", "eon", "vortex", "bzip2", "twolf",
                      "swim", "mgrid", "applu", "equake", "wupwise", "mesa",
                      "art", "ammp", "sixtrack", "apsi"));

TEST(WorkloadRegistry, NamesAndGroups) {
  // The paper's suite: SPEC2000 minus the Fortran-90 programs.
  EXPECT_EQ(allWorkloads().size(), 22u);
  unsigned Fp = 0;
  for (const Workload &W : allWorkloads())
    Fp += W.IsFp;
  EXPECT_EQ(Fp, 10u);
  EXPECT_NE(findWorkload("mgrid"), nullptr);
  EXPECT_TRUE(findWorkload("mgrid")->IsFp);
  EXPECT_EQ(findWorkload("nosuch"), nullptr);
}

TEST(WorkloadProperties, MgridHasRedundantLoads) {
  // mgrid's inner loop must present reloadable movsd loads (the RLR fuel).
  const Workload *W = findWorkload("mgrid");
  Program P = buildWorkload(*W, 1);
  // Count movsd loads from identical operands in the source: at least 2
  // redundant reloads are coded in the kernel.
  std::string Src = W->Source(1);
  size_t Count = 0, Pos = 0;
  while ((Pos = Src.find("redundant reload", Pos)) != std::string::npos) {
    ++Count;
    Pos += 1;
  }
  EXPECT_GE(Count, 2u);
}

TEST(WorkloadProperties, ScaleControlsWork) {
  const Workload *W = findWorkload("vpr");
  uint64_t Small = runNative(buildWorkload(*W, 4)).Instructions;
  uint64_t Large = runNative(buildWorkload(*W, 8)).Instructions;
  EXPECT_GT(Large, Small + Small / 2);
}

} // namespace

namespace {

/// Golden checksums at TestScale: catches accidental semantic drift of the
/// workload generators themselves across refactors (transparency tests
/// alone only compare native vs runtime, not against history).
TEST(WorkloadGolden, ChecksumsMatchRecordedValues) {
  struct Golden {
    const char *Name;
    const char *Checksum;
  };
  static const Golden Table[] = {
      {"gzip", "172400"},
      {"vpr", "12323"},
      {"gcc", "7733079"},
      {"mcf", "1140000"},
      {"crafty", "79296"},
      {"parser", "16777077"},
      {"perlbmk", "4022616"},
      {"gap", "93138"},
      {"eon", "3308880"},
      {"vortex", "28207"},
      {"bzip2", "1579422"},
      {"twolf", "8278"},
      {"swim", "49"},
      {"mgrid", "1643"},
      {"applu", "24772"},
      {"equake", "50"},
      {"wupwise", "16777205"},
      {"mesa", "46"},
      {"art", "26210"},
      {"ammp", "168"},
      {"sixtrack", "24889"},
      {"apsi", "106555"},
  };
  ASSERT_EQ(std::size(Table), allWorkloads().size());
  for (const Golden &G : Table) {
    const Workload *W = findWorkload(G.Name);
    ASSERT_NE(W, nullptr) << G.Name;
    Program P = buildWorkload(*W, W->TestScale);
    NativeRun R = runNative(P);
    ASSERT_EQ(R.Status, RunStatus::Exited) << G.Name;
    EXPECT_EQ(R.Output, std::string(G.Checksum) + "\n") << G.Name;
  }
}

/// Fault transparency: a program that faults natively faults identically
/// (same status) under the runtime, in cold and hot code alike.
TEST(WorkloadFaults, FaultStatusIsTransparent) {
  // Faults after a hot warmup (so the faulting code runs from a trace).
  Program P = assembleOrDie(R"(
    main:
      mov ecx, 20000
    warm:
      add eax, ecx
      dec ecx
      jnz warm
      mov eax, 5
      cdq
      mov ecx, 0
      idiv ecx            ; divide fault
      hlt
  )");
  NativeRun Native = runNative(P);
  EXPECT_EQ(Native.Status, RunStatus::Faulted);

  for (const RuntimeConfig &Config :
       {RuntimeConfig::emulate(), RuntimeConfig::linkDirect(),
        RuntimeConfig::full()}) {
    Machine M;
    ASSERT_TRUE(loadProgram(M, P));
    Runtime RT(M, Config);
    RunResult R = RT.run();
    EXPECT_EQ(R.Status, RunStatus::Faulted);
    EXPECT_NE(R.FaultReason.find("divide"), std::string::npos);
  }
}

} // namespace
