//===- tests/stats_parity_test.cpp - Hot-path refactor parity goldens -------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression goldens for the hot-path data structures (handle-based
/// statistics, the flat fragment/IBL table, the direct-mapped decode
/// cache). Those are host-side optimizations: the *simulated* machine —
/// cycle counts and every Figure 1 flow-chart edge counter — must be
/// bit-identical to the values recorded before the structures were
/// introduced. The workloads cover direct branches, megamorphic indirect
/// branches, trace building, self-modifying code, and FIFO eviction under
/// cache pressure.
///
/// All assertions go through the string-keyed StatisticSet::get() —
/// deliberately the old-style client API, proving the interned-handle
/// plumbing feeds the same names clients and tests have always read.
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "core/ThreadedRunner.h"
#include "harness/Experiment.h"
#include "support/OutStream.h"
#include "support/Statistics.h"
#include "workloads/Workloads.h"

#include "gtest/gtest.h"

using namespace rio;

namespace {

constexpr const char *FlowKeys[] = {
    "dispatches",       "context_switches",  "ibl_lookups",
    "ibl_hits",         "ibl_misses",        "head_counter_bumps",
    "cache_evictions",  "basic_blocks_built", "traces_built",
    "links_made",       "smc_invalidations",  "fragments_deleted",
};
constexpr size_t NumFlowKeys = sizeof(FlowKeys) / sizeof(FlowKeys[0]);

struct Golden {
  const char *Workload;
  uint64_t Cycles;
  uint64_t Instructions;
  uint64_t Flow[NumFlowKeys];
};

// Recorded with the pre-refactor runtime (node-based maps, string-keyed
// counters, unordered_map decode cache) at default scale, full() config.
constexpr Golden FullConfigGoldens[] = {
    {"crafty", 2311526ull, 504163ull,
     {29, 28, 15226, 15222, 4, 196, 0, 12, 4, 20, 0, 4}},
    {"vpr", 8092153ull, 3653228ull,
     {42, 41, 50, 48, 2, 294, 0, 14, 6, 28, 0, 6}},
    {"gap", 10807576ull, 2820116ull,
     {22, 21, 180038, 180032, 6, 98, 0, 11, 2, 9, 0, 2}},
    {"smc", 873883ull, 41548ull,
     {917, 916, 3302, 3239, 63, 3184, 0, 371, 64, 534, 360, 424}},
};

// Same recording under bounded caches small enough to force FIFO eviction
// (546 evictions), exercising head-state persistence across eviction.
constexpr Golden PressureGolden = {
    "cachepressure", 1144198ull, 42966ull,
    {628, 627, 1557, 1054, 503, 43, 546, 561, 1, 94, 0, 547}};

void expectGolden(const Golden &G, const RuntimeConfig &Config) {
  const Workload *W = findWorkload(G.Workload);
  ASSERT_NE(W, nullptr) << G.Workload;
  Outcome O = runUnderRuntime(buildWorkload(*W, 0), Config, ClientKind::None);
  EXPECT_EQ(O.Status, RunStatus::Exited) << G.Workload;
  EXPECT_EQ(O.Cycles, G.Cycles) << G.Workload;
  EXPECT_EQ(O.Instructions, G.Instructions) << G.Workload;
  for (size_t Idx = 0; Idx != NumFlowKeys; ++Idx)
    EXPECT_EQ(O.Stats.get(FlowKeys[Idx]), G.Flow[Idx])
        << G.Workload << " " << FlowKeys[Idx];
}

TEST(StatsParity, FullConfigWorkloadsMatchPreRefactorGoldens) {
  for (const Golden &G : FullConfigGoldens)
    expectGolden(G, RuntimeConfig::full());
}

TEST(StatsParity, EvictionUnderPressureMatchesPreRefactorGoldens) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.BbCacheSize = 1024;
  Config.TraceCacheSize = 2048;
  expectGolden(PressureGolden, Config);
}

//===----------------------------------------------------------------------===//
// Threaded goldens: ThreadPrivate mode pinned bit-identical across the
// thread-context / cache-layout split (ISSUE 3 tentpole requirement).
//===----------------------------------------------------------------------===//

/// Three workers all hammering one shared function — the program shape the
/// sharing trade-off is about. Deterministic under quantum scheduling.
Program threadedWorkProgram(int Workers, int Iters) {
  std::string S = R"(
    results: .space 32
    flags:   .space 32
    stacks:  .space 8192
    main:
  )";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov ebx, worker" + std::to_string(W) + "\n";
    S += "  mov ecx, stacks+" + std::to_string((W + 1) * 1024) + "\n";
    S += "  mov eax, 5\n  int 0x80\n"; // thread_create
  }
  S += "join:\n";
  for (int W = 0; W != Workers; ++W) {
    S += "  mov eax, [flags+" + std::to_string(W * 4) + "]\n";
    S += "  test eax, eax\n  jz join\n";
  }
  S += "  mov esi, 0\n";
  for (int W = 0; W != Workers; ++W)
    S += "  add esi, [results+" + std::to_string(W * 4) + "]\n";
  S += "  and esi, 0xFFFFFF\n";
  S += "  mov ebx, esi\n  mov eax, 2\n  int 0x80\n";
  S += "  mov ebx, 0\n  mov eax, 1\n  int 0x80\n";
  for (int W = 0; W != Workers; ++W) {
    std::string Id = std::to_string(W);
    S += "worker" + Id + ":\n";
    S += "  mov esi, 0\n";
    S += "  mov ecx, " + std::to_string(Iters) + "\n";
    S += "wloop" + Id + ":\n";
    S += "  mov eax, ecx\n";
    S += "  call shared_fn\n";
    S += "  add esi, eax\n  and esi, 0xFFFFFF\n";
    S += "  dec ecx\n  jnz wloop" + Id + "\n";
    S += "  mov [results+" + std::to_string(W * 4) + "], esi\n";
    S += "  mov eax, 1\n  mov [flags+" + std::to_string(W * 4) + "], eax\n";
    S += "  mov eax, 6\n  int 0x80\n"; // thread_exit
  }
  S += R"(
    shared_fn:
      imul eax, eax, 17
      and eax, 1023
      add eax, 3
      ret
  )";
  Program Prog;
  std::string Error;
  if (!assemble(S, Prog, Error)) {
    ADD_FAILURE() << "assembly failed: " << Error;
    std::abort();
  }
  return Prog;
}

constexpr const char *ThreadFlowKeys[] = {
    "dispatches",   "context_switches",   "ibl_lookups",
    "ibl_hits",     "head_counter_bumps", "basic_blocks_built",
    "traces_built", "links_made",         "fragments_deleted",
    "cache_evictions",
};
constexpr size_t NumThreadFlowKeys =
    sizeof(ThreadFlowKeys) / sizeof(ThreadFlowKeys[0]);

struct ThreadedGolden {
  uint64_t Cycles;
  uint64_t Instructions;
  uint64_t Flow[NumThreadFlowKeys]; ///< summed over the per-thread runtimes
};

// Recorded with the pre-refactor ThreadedRunner (hard-coded MaxThreads=8,
// quantum 5000, per-runtime resume state): threadedWorkProgram(3, 2000),
// output "3073800\n". The full() row uses default cache bounds; the
// pressure row uses BbCacheSize = TraceCacheSize = 256 to force eviction
// under quantum scheduling.
constexpr ThreadedGolden ThreadedFullGolden = {
    264156ull, 119769ull, {37, 33, 153, 147, 196, 23, 4, 13, 4, 0}};
constexpr ThreadedGolden ThreadedPressureGolden = {
    264396ull, 119769ull, {37, 33, 153, 147, 196, 23, 4, 13, 6, 2}};

void expectThreadedGolden(const ThreadedGolden &G,
                          const RuntimeConfig &Config) {
  Program P = threadedWorkProgram(3, 2000);
  Machine M;
  ASSERT_TRUE(loadProgram(M, P));
  ThreadedRunner Runner(M, Config);
  RunResult R = Runner.run();
  ASSERT_EQ(R.Status, RunStatus::Exited) << R.FaultReason;
  EXPECT_EQ(R.Cycles, G.Cycles);
  EXPECT_EQ(R.Instructions, G.Instructions);
  EXPECT_EQ(M.output(), "3073800\n");
  for (size_t Idx = 0; Idx != NumThreadFlowKeys; ++Idx) {
    uint64_t Sum = 0;
    for (unsigned Tid = 0; Tid != Runner.threadsSeen(); ++Tid)
      Sum += Runner.runtimeFor(Tid)->stats().get(ThreadFlowKeys[Idx]);
    EXPECT_EQ(Sum, G.Flow[Idx]) << ThreadFlowKeys[Idx];
  }
}

TEST(StatsParity, ThreadPrivateModeMatchesPreRefactorGoldens) {
  expectThreadedGolden(ThreadedFullGolden, RuntimeConfig::full());
}

TEST(StatsParity, ThreadPrivatePressureMatchesPreRefactorGoldens) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.BbCacheSize = 256;
  Config.TraceCacheSize = 256;
  expectThreadedGolden(ThreadedPressureGolden, Config);
}

// Shared-cache mode pinned alongside (ISSUE 4: tracing disabled must leave
// BOTH sharing modes bit-identical; these values were recorded before the
// observability instrumentation landed).
constexpr ThreadedGolden ThreadedSharedGolden = {
    263032ull, 119765ull, {140, 124, 612, 588, 784, 84, 16, 72, 16, 0}};

TEST(StatsParity, SharedCacheModeMatchesPreObservabilityGoldens) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.Sharing = CacheSharing::Shared;
  expectThreadedGolden(ThreadedSharedGolden, Config);
}

//===----------------------------------------------------------------------===//
// StatisticSet::print order: counters must print in REGISTRATION order,
// not name-sorted (the interned-handle refactor briefly iterated the
// name->index map, which silently re-sorted reports alphabetically).
//===----------------------------------------------------------------------===//

TEST(StatsParity, PrintFollowsRegistrationOrderNotNameOrder) {
  StatisticSet S;
  // Deliberately anti-alphabetical registration order.
  S.counter("zeta") += 1;
  S.counter("alpha") += 2;
  S.counter("mid") += 3;
  StringOutStream OS;
  S.print(OS);
  const std::string &Text = OS.str();
  size_t Zeta = Text.find("zeta");
  size_t Alpha = Text.find("alpha");
  size_t Mid = Text.find("mid");
  ASSERT_NE(Zeta, std::string::npos);
  ASSERT_NE(Alpha, std::string::npos);
  ASSERT_NE(Mid, std::string::npos);
  EXPECT_LT(Zeta, Alpha) << "print() re-sorted counters by name:\n" << Text;
  EXPECT_LT(Alpha, Mid) << "print() re-sorted counters by name:\n" << Text;
}

} // namespace
