//===- tests/stats_parity_test.cpp - Hot-path refactor parity goldens -------===//
//
// Part of the RIO-DYN reproduction of "An Infrastructure for Adaptive
// Dynamic Optimization" (CGO 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression goldens for the hot-path data structures (handle-based
/// statistics, the flat fragment/IBL table, the direct-mapped decode
/// cache). Those are host-side optimizations: the *simulated* machine —
/// cycle counts and every Figure 1 flow-chart edge counter — must be
/// bit-identical to the values recorded before the structures were
/// introduced. The workloads cover direct branches, megamorphic indirect
/// branches, trace building, self-modifying code, and FIFO eviction under
/// cache pressure.
///
/// All assertions go through the string-keyed StatisticSet::get() —
/// deliberately the old-style client API, proving the interned-handle
/// plumbing feeds the same names clients and tests have always read.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "workloads/Workloads.h"

#include "gtest/gtest.h"

using namespace rio;

namespace {

constexpr const char *FlowKeys[] = {
    "dispatches",       "context_switches",  "ibl_lookups",
    "ibl_hits",         "ibl_misses",        "head_counter_bumps",
    "cache_evictions",  "basic_blocks_built", "traces_built",
    "links_made",       "smc_invalidations",  "fragments_deleted",
};
constexpr size_t NumFlowKeys = sizeof(FlowKeys) / sizeof(FlowKeys[0]);

struct Golden {
  const char *Workload;
  uint64_t Cycles;
  uint64_t Instructions;
  uint64_t Flow[NumFlowKeys];
};

// Recorded with the pre-refactor runtime (node-based maps, string-keyed
// counters, unordered_map decode cache) at default scale, full() config.
constexpr Golden FullConfigGoldens[] = {
    {"crafty", 2311526ull, 504163ull,
     {29, 28, 15226, 15222, 4, 196, 0, 12, 4, 20, 0, 4}},
    {"vpr", 8092153ull, 3653228ull,
     {42, 41, 50, 48, 2, 294, 0, 14, 6, 28, 0, 6}},
    {"gap", 10807576ull, 2820116ull,
     {22, 21, 180038, 180032, 6, 98, 0, 11, 2, 9, 0, 2}},
    {"smc", 873883ull, 41548ull,
     {917, 916, 3302, 3239, 63, 3184, 0, 371, 64, 534, 360, 424}},
};

// Same recording under bounded caches small enough to force FIFO eviction
// (546 evictions), exercising head-state persistence across eviction.
constexpr Golden PressureGolden = {
    "cachepressure", 1144198ull, 42966ull,
    {628, 627, 1557, 1054, 503, 43, 546, 561, 1, 94, 0, 547}};

void expectGolden(const Golden &G, const RuntimeConfig &Config) {
  const Workload *W = findWorkload(G.Workload);
  ASSERT_NE(W, nullptr) << G.Workload;
  Outcome O = runUnderRuntime(buildWorkload(*W, 0), Config, ClientKind::None);
  EXPECT_EQ(O.Status, RunStatus::Exited) << G.Workload;
  EXPECT_EQ(O.Cycles, G.Cycles) << G.Workload;
  EXPECT_EQ(O.Instructions, G.Instructions) << G.Workload;
  for (size_t Idx = 0; Idx != NumFlowKeys; ++Idx)
    EXPECT_EQ(O.Stats.get(FlowKeys[Idx]), G.Flow[Idx])
        << G.Workload << " " << FlowKeys[Idx];
}

TEST(StatsParity, FullConfigWorkloadsMatchPreRefactorGoldens) {
  for (const Golden &G : FullConfigGoldens)
    expectGolden(G, RuntimeConfig::full());
}

TEST(StatsParity, EvictionUnderPressureMatchesPreRefactorGoldens) {
  RuntimeConfig Config = RuntimeConfig::full();
  Config.BbCacheSize = 1024;
  Config.TraceCacheSize = 2048;
  expectGolden(PressureGolden, Config);
}

} // namespace
