#!/usr/bin/env python3
"""Compare two BENCH_*.json files produced by the bench binaries.

Three schemas are recognized by their fields:

  * throughput (bench_throughput): entries carry {"config", "instructions",
    "wall_ns", "mips"}. MIPS is wall-clock derived, so higher is better and
    runs on different hardware are only loosely comparable — the default is
    to warn on regressions and exit 0.

  * metrics (bench_observability): entries carry {"config", "cycles",
    "events", "samples", "snapshots", "snapshot_ns"}. The simulated cycle
    counts must be bit-identical across the off/idle/recording/metrics
    states AND across commits (the whole observability layer, metrics
    registry included, is host-side only), so cycles are compared with a
    zero threshold — any drift at all is a regression. Snapshot counts are
    exact too; snapshot_ns is host wall clock and only displayed.

  * observability (older bench_observability files): entries carry
    {"config", "cycles", "events", "samples"} without snapshot columns.
    Same zero-threshold cycle gate.

  * fork (bench_fork): entries carry {"config", "cycles", "cycles_warmup",
    "cow_pages", "unshares", ...}. Every forked tenant must replay the cold
    steady-state run bit-identically, so cycles (and the warm-up cycles,
    privatized page counts and unshare counts) are compared with a zero
    threshold; spawn time and RSS are host wall clock / allocator dependent
    and only displayed.

  * sideline (bench_sideline): entries carry {"config", "cycles",
    "published", ...}. The async schedule is seeded and the clock is
    simulated, so cycles and publication counts are bit-identical across
    runs and gated with a zero threshold; host_ns is wall clock and only
    displayed.

  * traceopt (bench_traceopt): entries carry {"config", "cycles", "guards",
    "published", "deopts", ...}. Same seeded-schedule reasoning: cycles,
    guard, publication, and deopt counts are exact and gated with a zero
    threshold; host_ns is only displayed.

  * simulated (bench_threads): entries carry {"config", "cycles", ...} plus
    deterministic byte/fragment counts. Lower cycles is better, and the
    numbers are exact (simulated clock), so any drift is a real behavior
    change worth reading; cache_bytes drift is reported alongside.

Configs are matched by name. Pass --fail-on-regress to turn a regression
beyond the threshold into a non-zero exit. A file whose entries match no
known schema, or whose entries are missing a key its schema requires, is
always a hard error (exit 2): silently misclassifying a benchmark file
would un-gate its invariants.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                   [--fail-on-regress]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array")
    if not data:
        raise ValueError(f"{path}: empty benchmark array")
    if "mips" in data[0]:
        schema = "throughput"
        required = ("config", "instructions", "wall_ns", "mips")
    elif "snapshot_ns" in data[0]:
        # Must be probed before "events": metrics files carry both.
        schema = "metrics"
        required = ("config", "cycles", "events", "samples", "snapshots",
                    "snapshot_ns")
    elif "events" in data[0]:
        schema = "observability"
        required = ("config", "cycles", "events", "samples")
    elif "cow_pages" in data[0]:
        schema = "fork"
        required = ("config", "cycles", "cycles_warmup", "cow_pages",
                    "unshares")
    elif "image_bytes" in data[0]:
        schema = "persist"
        required = ("config", "cycles", "cycles_cold", "image_bytes")
    elif "guards" in data[0]:
        # Must be probed before "published": traceopt files carry both.
        schema = "traceopt"
        required = ("config", "cycles", "guards", "published", "deopts")
    elif "published" in data[0]:
        schema = "sideline"
        required = ("config", "cycles", "published")
    elif "cycles" in data[0]:
        schema = "simulated"
        required = ("config", "cycles")
    else:
        raise ValueError(
            f"{path}: unrecognized benchmark schema "
            f"(entry fields: {sorted(data[0])}); refusing to guess")
    out = {}
    for entry in data:
        for key in required:
            if key not in entry:
                raise ValueError(f"{path}: entry missing '{key}': {entry}")
        out[entry["config"]] = entry
    return schema, out


def compare(base, cur, metric, higher_is_better, threshold, extra=None):
    """Prints a per-config table; returns the list of regressions."""
    regressions = []
    header = f"{'config':<14} {'base ' + metric:>14} {'cur ' + metric:>14} " \
             f"{'delta':>9}"
    if extra:
        header += f" {extra + ' delta':>17}"
    print(header)
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<14} {'-':>14} {cur[name][metric]:>14}   (new)")
            continue
        if name not in cur:
            print(f"{name:<14} {base[name][metric]:>14} {'-':>14}   (gone)")
            regressions.append(f"{name}: missing from current file")
            continue
        b, c = float(base[name][metric]), float(cur[name][metric])
        delta = (c - b) / b * 100.0 if b else 0.0
        line = f"{name:<14} {b:>14.2f} {c:>14.2f} {delta:>+8.1f}%"
        if extra and extra in base[name] and extra in cur[name]:
            line += f" {cur[name][extra] - base[name][extra]:>+17}"
        print(line)
        worse = -delta if higher_is_better else delta
        if worse > threshold:
            regressions.append(f"{name}: {b:.2f} -> {c:.2f} {metric} "
                               f"({delta:+.1f}%)")
    return regressions


def compare_exact(base, cur, metric):
    """Flags ANY difference in metric, improvements included (used for the
    observability schema, where the simulated clock may not move at all)."""
    diffs = []
    for name in sorted(set(base) & set(cur)):
        b, c = base[name][metric], cur[name][metric]
        if b != c:
            diffs.append(f"{name}: {metric} changed {b} -> {c} "
                         f"(must be bit-identical)")
    return diffs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 if any config regresses past the threshold")
    args = ap.parse_args()

    try:
        base_schema, base = load(args.baseline)
        cur_schema, cur = load(args.current)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if base_schema != cur_schema:
        print(f"schema mismatch: {args.baseline} is {base_schema}, "
              f"{args.current} is {cur_schema}")
        return 1

    if base_schema == "throughput":
        regressions = compare(base, cur, "mips", higher_is_better=True,
                              threshold=args.threshold)
    elif base_schema == "metrics":
        # Same host-side-only invariant as observability, now covering the
        # metrics registry's snapshot driver too; snapshot counts come from
        # the deterministic runFor slicing, so they are exact as well.
        # snapshot_ns is host wall clock, displayed but never gated.
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=0.0, extra="snapshot_ns")
        regressions += compare_exact(base, cur, "cycles")
        regressions += compare_exact(base, cur, "snapshots")
    elif base_schema == "observability":
        # Host-side-only invariant: cycles must not move at all, in either
        # direction. A "speedup" here is just as much a bug as a slowdown.
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=0.0, extra="events")
        regressions += compare_exact(base, cur, "cycles")
    elif base_schema == "fork":
        # Per-tenant simulated cycles are exact: every tenant must replay
        # the cold steady-state run bit-identically, so any drift at all —
        # either direction — is a behavior change. The same goes for the
        # pages a tenant privatizes and for cache unshares (0 from a
        # steady-state template). Spawn/cold wall clock and RSS are
        # host-side; shown in the table, never gated.
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=0.0, extra="cow_pages")
        regressions += compare_exact(base, cur, "cycles")
        regressions += compare_exact(base, cur, "cycles_warmup")
        regressions += compare_exact(base, cur, "unshares")
        print()
        compare(base, cur, "rss_per_tenant_kb", higher_is_better=False,
                threshold=float("inf"), extra="spawn_ns")
    elif base_schema == "traceopt":
        # Simulated cycles, guard, publication, and deopt counts are all
        # exact on the seeded schedule: gate them with a zero threshold.
        # The binary already asserts the >=10% aggregate reduction and
        # deopts == 0; the baseline diff catches everything subtler.
        # host_ns is wall clock, displayed but never gated.
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=0.0, extra="guards")
        regressions += compare_exact(base, cur, "cycles")
        regressions += compare_exact(base, cur, "guards")
        regressions += compare_exact(base, cur, "published")
        regressions += compare_exact(base, cur, "deopts")
        print()
        compare(base, cur, "host_ns", higher_is_better=False,
                threshold=float("inf"))
    elif base_schema == "sideline":
        # Seeded virtual-completion schedule on a simulated clock: cycle
        # counts and publication counts must be bit-identical across
        # commits; any drift is a cost-model or scheduling change worth
        # reading. host_ns is wall clock, displayed but never gated.
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=0.0, extra="published")
        regressions += compare_exact(base, cur, "cycles")
        regressions += compare_exact(base, cur, "published")
        print()
        compare(base, cur, "host_ns", higher_is_better=False,
                threshold=float("inf"))
    elif base_schema == "persist":
        # Simulated cycles (warm and cold) are exact and deterministic:
        # gate them hard. Image size is reported alongside; save_ns/load_ns
        # are host wall clock and deliberately not compared.
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=args.threshold, extra="image_bytes")
        regressions += compare(base, cur, "cycles_cold",
                               higher_is_better=False,
                               threshold=args.threshold)
    else:
        regressions = compare(base, cur, "cycles", higher_is_better=False,
                              threshold=args.threshold, extra="cache_bytes")

    if regressions:
        if base_schema in ("metrics", "observability", "fork", "sideline",
                           "traceopt"):
            print("\nWARNING: simulated cycles drifted (must be "
                  "bit-identical):")
        else:
            print(f"\nWARNING: regression beyond {args.threshold:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        if args.fail_on_regress:
            return 1
    else:
        print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
