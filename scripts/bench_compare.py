#!/usr/bin/env python3
"""Compare two BENCH_throughput.json files (bench/bench_throughput).

Each file is an array of {"config", "instructions", "wall_ns", "mips"}
entries. Configs are matched by name; the MIPS delta is reported for each.

By default the script only *warns* on regressions (exit 0), so it can gate
CI softly while the checked-in baseline was measured on different hardware
than the runner. Pass --fail-on-regress to turn a regression beyond the
threshold into a non-zero exit.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                   [--fail-on-regress]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array")
    out = {}
    for entry in data:
        for key in ("config", "instructions", "wall_ns", "mips"):
            if key not in entry:
                raise ValueError(f"{path}: entry missing '{key}': {entry}")
        out[entry["config"]] = entry
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 if any config regresses past the threshold")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    print(f"{'config':<14} {'base MIPS':>12} {'cur MIPS':>12} {'delta':>9}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<14} {'-':>12} {cur[name]['mips']:>12.2f}   (new)")
            continue
        if name not in cur:
            print(f"{name:<14} {base[name]['mips']:>12.2f} {'-':>12}   (gone)")
            regressions.append(f"{name}: missing from {args.current}")
            continue
        b, c = base[name]["mips"], cur[name]["mips"]
        delta = (c - b) / b * 100.0 if b else 0.0
        print(f"{name:<14} {b:>12.2f} {c:>12.2f} {delta:>+8.1f}%")
        if delta < -args.threshold:
            regressions.append(
                f"{name}: {b:.2f} -> {c:.2f} MIPS ({delta:+.1f}%)")

    if regressions:
        print(f"\nWARNING: regression beyond {args.threshold:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        if args.fail_on_regress:
            return 1
    else:
        print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
