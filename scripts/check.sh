#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, and regenerate
# every paper table/figure. Exits nonzero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo
echo "=== regenerating all paper tables/figures + ablations ==="
for b in build/bench/*; do
  echo
  echo "--- $(basename "$b")"
  "$b"
done
