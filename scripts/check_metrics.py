#!/usr/bin/env python3
"""Validate riodyn metrics exports against scripts/metrics_schema.json.

Checks the pair of files `riodyn -metrics OUT.prom` writes (Prometheus text
exposition plus the sibling OUT.json snapshot), or a flight-record dump:

  check_metrics.py --schema scripts/metrics_schema.json OUT.prom OUT.json
  check_metrics.py --schema scripts/metrics_schema.json --flight FR.json

Prometheus checks: every sample belongs to a family declared by a
preceding `# TYPE` line, types are legal, required families are present,
histogram `_bucket` series are cumulative and end at `+Inf` == `_count`.

JSON checks: required top-level keys, fleet entries carry kind/value/delta
with a legal kind, and the per-tenant sections sum exactly to the fleet
rollup for every metric (the registry computes the rollup, so any mismatch
means a corrupted export).

Cross-checks: both files came from the same snapshot, so the fleet values
in the Prometheus text must equal the JSON fleet values.

Everything is hand-rolled on the standard library: no jsonschema, no
prometheus client. Exit 0 on success, 1 with a message on any violation.
"""

import argparse
import json
import re
import sys


class Violation(Exception):
    pass


def fail(msg):
    raise Violation(msg)


def parse_prometheus(text):
    """Returns ({family: type}, {series_line_name_with_labels: value})."""
    types = {}
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = re.match(r"# TYPE (\S+) (\S+)$", line)
            if not m:
                fail(f"prom line {lineno}: malformed comment: {line!r}")
            types[m.group(1)] = m.group(2)
            continue
        m = re.match(r"([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (\d+)$", line)
        if not m:
            fail(f"prom line {lineno}: malformed sample: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", int(m.group(3))
        family = re.sub(r"_(bucket|sum|count)$", "", name) \
            if name.endswith(("_bucket", "_sum", "_count")) else name
        if family not in types and name not in types:
            fail(f"prom line {lineno}: sample {name!r} has no # TYPE line")
        samples[name + labels] = value
    return types, samples


def check_prometheus(text, schema):
    types, samples = parse_prometheus(text)
    legal = set(schema["types"])
    prefix = schema["prefix"]
    for family, kind in types.items():
        if kind not in legal:
            fail(f"prom family {family!r}: illegal type {kind!r}")
        if not family.startswith(prefix):
            fail(f"prom family {family!r}: missing prefix {prefix!r}")
    for family in schema["required_families"]:
        if family not in types:
            fail(f"prom: required family {family!r} missing")
        if not any(s == family or s.startswith(family + "{")
                   for s in samples):
            fail(f"prom: family {family!r} declared but has no sample")
    # Histogram sanity: cumulative buckets, +Inf present and == _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [(s, v) for s, v in samples.items()
                   if s.startswith(family + "_bucket{")]
        if not buckets:
            fail(f"prom histogram {family!r}: no _bucket series")
        prev = 0
        for s, v in buckets:  # emitted in ascending le order
            if v < prev:
                fail(f"prom histogram {family!r}: non-cumulative at {s!r}")
            prev = v
        inf = samples.get(family + '_bucket{le="+Inf"}')
        count = samples.get(family + "_count")
        if inf is None or count is None or inf != count:
            fail(f"prom histogram {family!r}: +Inf bucket ({inf}) != "
                 f"_count ({count})")
    return types, samples


def check_json(doc, schema):
    for key in schema["required_top"]:
        if key not in doc:
            fail(f"json: required top-level key {key!r} missing")
    if not isinstance(doc["sequence"], int) or doc["sequence"] < 1:
        fail(f"json: sequence must be a positive integer, "
             f"got {doc['sequence']!r}")
    kinds = set(schema["kinds"])
    for name, entry in doc["fleet"].items():
        for key in schema["fleet_value_keys"]:
            if key not in entry:
                fail(f"json fleet {name!r}: missing {key!r}")
        if entry["kind"] not in kinds:
            fail(f"json fleet {name!r}: illegal kind {entry['kind']!r}")
    for metric in schema["required_fleet_metrics"]:
        if metric not in doc["fleet"]:
            fail(f"json: required fleet metric {metric!r} missing")
    for tenant in doc["tenants"]:
        for key in schema["tenant_keys"]:
            if key not in tenant:
                fail(f"json tenant section: missing {key!r}")
    # The rollup identity: tenant sections sum exactly to the fleet value.
    for name, entry in doc["fleet"].items():
        total = sum(t["metrics"].get(name, 0) for t in doc["tenants"])
        if total != entry["value"]:
            fail(f"json fleet {name!r}: tenant sum {total} != "
                 f"fleet value {entry['value']}")


def cross_check(samples, doc, prefix):
    """Both files were written from one snapshot: fleet values must agree."""
    for name, entry in doc["fleet"].items():
        prom = samples.get(prefix + name)
        if prom is None:
            fail(f"cross: fleet metric {name!r} absent from Prometheus text")
        if prom != entry["value"]:
            fail(f"cross: {name!r} is {prom} in Prometheus text but "
                 f"{entry['value']} in JSON")
    if samples.get(prefix + "snapshot_sequence") != doc["sequence"]:
        fail("cross: snapshot_sequence differs between the two files")


def check_flight(doc, schema):
    for key in schema["required_top"]:
        if key not in doc:
            fail(f"flight: required top-level key {key!r} missing")
    if doc["flight_record"] != 1:
        fail(f"flight: version marker is {doc['flight_record']!r}, not 1")
    for key in schema["events_keys"]:
        if key not in doc["events"]:
            fail(f"flight events: missing {key!r}")
    for key in schema["profile_keys"]:
        if key not in doc["profile"]:
            fail(f"flight profile: missing {key!r}")
    ev = doc["events"]
    if ev["dropped"] + len(ev["last"]) > ev["total_recorded"] and ev["last"]:
        fail(f"flight events: dropped ({ev['dropped']}) + retained "
             f"({len(ev['last'])}) exceeds total ({ev['total_recorded']})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--schema", required=True,
                    help="path to scripts/metrics_schema.json")
    ap.add_argument("--flight", metavar="FR_JSON",
                    help="validate a flight-record dump instead")
    ap.add_argument("prom", nargs="?", help="Prometheus exposition file")
    ap.add_argument("json_file", nargs="?", help="sibling JSON snapshot")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    try:
        if args.flight:
            with open(args.flight) as f:
                doc = json.load(f)
            check_flight(doc, schema["flight_record"])
            check_json(doc["snapshot"], schema["json"])
            print(f"{args.flight}: flight record OK "
                  f"(reason {doc['reason']!r}, "
                  f"{len(doc['events']['last'])} events retained, "
                  f"{len(doc['profile']['top'])} profile rows)")
            return 0
        if not args.prom or not args.json_file:
            ap.error("need OUT.prom and OUT.json (or --flight FR.json)")
        with open(args.prom) as f:
            prom_text = f.read()
        with open(args.json_file) as f:
            doc = json.load(f)
        _, samples = check_prometheus(prom_text, schema["prometheus"])
        check_json(doc, schema["json"])
        cross_check(samples, doc, schema["prometheus"]["prefix"])
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except Violation as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"{args.prom} + {args.json_file}: metrics exports OK "
          f"({len(doc['fleet'])} fleet metrics, "
          f"{len(doc['tenants'])} sections, sequence {doc['sequence']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
